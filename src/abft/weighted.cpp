#include "core/sync.hpp"
#include "abft/weighted.hpp"

#include <cmath>

#include "abft/upper_bound.hpp"
#include "core/require.hpp"

namespace aabft::abft {

using gpusim::BlockCtx;
using gpusim::Dim3;
using linalg::Matrix;

linalg::Matrix WeightedCodec::encode_columns_host(const Matrix& a) const {
  AABFT_REQUIRE(divides(a.rows()), "rows of A must be a multiple of BS");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix enc(encoded_dim(m), n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) enc(enc_index(i), j) = a(i, j);
  for (std::size_t blk = 0; blk < num_blocks(m); ++blk) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      double wsum = 0.0;
      for (std::size_t i = 0; i < bs_; ++i) {
        const double v = a(blk * bs_ + i, j);
        sum += v;
        wsum += weight(i) * v;
      }
      enc(sum_index(blk), j) = sum;
      enc(weighted_index(blk), j) = wsum;
    }
  }
  return enc;
}

linalg::Matrix WeightedCodec::encode_rows_host(const Matrix& b) const {
  AABFT_REQUIRE(divides(b.cols()), "columns of B must be a multiple of BS");
  const std::size_t n = b.rows();
  const std::size_t q = b.cols();
  Matrix enc(n, encoded_dim(q), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < q; ++j) enc(i, enc_index(j)) = b(i, j);
    for (std::size_t blk = 0; blk < num_blocks(q); ++blk) {
      double sum = 0.0;
      double wsum = 0.0;
      for (std::size_t j = 0; j < bs_; ++j) {
        const double v = b(i, blk * bs_ + j);
        sum += v;
        wsum += weight(j) * v;
      }
      enc(i, sum_index(blk)) = sum;
      enc(i, weighted_index(blk)) = wsum;
    }
  }
  return enc;
}

linalg::Matrix WeightedCodec::strip(const Matrix& c_fc) const {
  AABFT_REQUIRE(c_fc.rows() % (bs_ + 2) == 0 && c_fc.cols() % (bs_ + 2) == 0,
                "full-checksum matrix dimensions must be multiples of BS+2");
  const std::size_t m = c_fc.rows() / (bs_ + 2) * bs_;
  const std::size_t q = c_fc.cols() / (bs_ + 2) * bs_;
  Matrix out(m, q, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < q; ++j)
      out(i, j) = c_fc(enc_index(i), enc_index(j));
  return out;
}

namespace {

PMaxTable reduce_candidates(gpusim::Launcher& launcher, const char* name,
                            const std::vector<PMaxList>& candidates,
                            std::size_t vectors, std::size_t chunks,
                            std::size_t p) {
  PMaxTable table(vectors, PMaxList(p));
  launcher.launch(name, Dim3{vectors, 1, 1}, [&](BlockCtx& blk) {
    const std::size_t v = blk.block.x;
    PMaxList merged(p);
    std::size_t comparisons = 0;
    for (std::size_t c = 0; c < chunks; ++c)
      comparisons += merged.merge(candidates[v * chunks + c]);
    blk.math.count_compares(comparisons);
    blk.math.load_doubles(chunks * p * 2);
    blk.math.store_doubles(p * 2);
    table[v] = std::move(merged);
  });
  return table;
}

/// Scan-and-zero p-max search over a strided value array, offering results
/// with a global index offset (Algorithm 1, Figure 3 style).
void pmax_scan_into(std::vector<double>& values, std::size_t p,
                    std::size_t index_offset, PMaxList& out,
                    gpusim::MathCtx& math) {
  for (std::size_t pass = 0; pass < p; ++pass) {
    double max_val = 0.0;
    std::size_t max_id = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      math.count_compares(1);
      if (values[i] > max_val) {
        max_val = values[i];
        max_id = i;
      }
    }
    out.offer(max_val, index_offset + max_id);
    values[max_id] = 0.0;
  }
}

}  // namespace

WeightedEncoded weighted_encode_columns(gpusim::Launcher& launcher,
                                        const Matrix& a,
                                        const WeightedCodec& codec,
                                        std::size_t p) {
  AABFT_REQUIRE(p >= 1, "p must be at least 1");
  AABFT_REQUIRE(codec.divides(a.rows()), "rows of A must be a multiple of BS");
  const std::size_t bs = codec.bs();
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t block_rows = m / bs;
  const std::size_t col_chunks = (n + bs - 1) / bs;
  const std::size_t enc_rows = codec.encoded_dim(m);

  Matrix enc(enc_rows, n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) enc(codec.enc_index(i), j) = a(i, j);

  std::vector<PMaxList> candidates(enc_rows * col_chunks, PMaxList(p));

  launcher.launch("encode_a_weighted", Dim3{col_chunks, block_rows, 1},
                  [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t br = blk.block.y;
    const std::size_t bc = blk.block.x;
    const std::size_t row0 = br * bs;
    const std::size_t col0 = bc * bs;
    const std::size_t width = std::min(bs, n - col0);

    std::vector<double> asub(bs * width);
    std::vector<double> sums(width, 0.0);
    std::vector<double> wsums(width, 0.0);

    math.load_doubles(bs * width);
    for (std::size_t c = 0; c < width; ++c) {
      double sum = 0.0;
      double wsum = 0.0;
      for (std::size_t r = 0; r < bs; ++r) {
        const double v = a(row0 + r, col0 + c);
        sum = math.add(sum, v);
        wsum = math.add(wsum, math.mul(codec.weight(r), v));
        asub[r * width + c] = math.abs(v);
      }
      enc(codec.sum_index(br), col0 + c) = sum;
      enc(codec.weighted_index(br), col0 + c) = wsum;
      sums[c] = math.abs(sum);
      wsums[c] = math.abs(wsum);
    }
    math.store_doubles(2 * width);

    // p-max per data row, then for both checksum vectors.
    for (std::size_t r = 0; r < bs; ++r) {
      std::vector<double> row(width);
      for (std::size_t c = 0; c < width; ++c) row[c] = asub[r * width + c];
      pmax_scan_into(row, p, col0,
                     candidates[codec.enc_index(row0 + r) * col_chunks + bc],
                     math);
    }
    pmax_scan_into(sums, p, col0,
                   candidates[codec.sum_index(br) * col_chunks + bc], math);
    pmax_scan_into(wsums, p, col0,
                   candidates[codec.weighted_index(br) * col_chunks + bc], math);
    math.store_doubles((bs + 2) * p * 2);
  });

  WeightedEncoded out;
  out.data = std::move(enc);
  out.pmax = reduce_candidates(launcher, "reduce_pmax_aw", candidates,
                               enc_rows, col_chunks, p);
  return out;
}

WeightedEncoded weighted_encode_rows(gpusim::Launcher& launcher, const Matrix& b,
                                     const WeightedCodec& codec, std::size_t p) {
  AABFT_REQUIRE(p >= 1, "p must be at least 1");
  AABFT_REQUIRE(codec.divides(b.cols()),
                "columns of B must be a multiple of BS");
  const std::size_t bs = codec.bs();
  const std::size_t n = b.rows();
  const std::size_t q = b.cols();
  const std::size_t block_cols = q / bs;
  const std::size_t row_chunks = (n + bs - 1) / bs;
  const std::size_t enc_cols = codec.encoded_dim(q);

  Matrix enc(n, enc_cols, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < q; ++j) enc(i, codec.enc_index(j)) = b(i, j);

  std::vector<PMaxList> candidates(enc_cols * row_chunks, PMaxList(p));

  launcher.launch("encode_b_weighted", Dim3{block_cols, row_chunks, 1},
                  [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t br = blk.block.y;
    const std::size_t bc = blk.block.x;
    const std::size_t row0 = br * bs;
    const std::size_t col0 = bc * bs;
    const std::size_t height = std::min(bs, n - row0);

    std::vector<double> bsub(height * bs);
    std::vector<double> sums(height, 0.0);
    std::vector<double> wsums(height, 0.0);

    math.load_doubles(height * bs);
    for (std::size_t r = 0; r < height; ++r) {
      double sum = 0.0;
      double wsum = 0.0;
      for (std::size_t c = 0; c < bs; ++c) {
        const double v = b(row0 + r, col0 + c);
        sum = math.add(sum, v);
        wsum = math.add(wsum, math.mul(codec.weight(c), v));
        bsub[r * bs + c] = math.abs(v);
      }
      enc(row0 + r, codec.sum_index(bc)) = sum;
      enc(row0 + r, codec.weighted_index(bc)) = wsum;
      sums[r] = math.abs(sum);
      wsums[r] = math.abs(wsum);
    }
    math.store_doubles(2 * height);

    for (std::size_t c = 0; c < bs; ++c) {
      std::vector<double> col(height);
      for (std::size_t r = 0; r < height; ++r) col[r] = bsub[r * bs + c];
      pmax_scan_into(col, p, row0,
                     candidates[codec.enc_index(col0 + c) * row_chunks + br],
                     math);
    }
    pmax_scan_into(sums, p, row0,
                   candidates[codec.sum_index(bc) * row_chunks + br], math);
    pmax_scan_into(wsums, p, row0,
                   candidates[codec.weighted_index(bc) * row_chunks + br], math);
    math.store_doubles((bs + 2) * p * 2);
  });

  WeightedEncoded out;
  out.data = std::move(enc);
  out.pmax = reduce_candidates(launcher, "reduce_pmax_bw", candidates,
                               enc_cols, row_chunks, p);
  return out;
}

WeightedCheckReport weighted_check_product(
    gpusim::Launcher& launcher, const Matrix& c_fc, const WeightedCodec& codec,
    const PMaxTable& a_pmax, const PMaxTable& b_pmax, std::size_t inner_dim,
    const BoundParams& params) {
  const std::size_t bs = codec.bs();
  AABFT_REQUIRE(c_fc.rows() % (bs + 2) == 0 && c_fc.cols() % (bs + 2) == 0,
                "C_fc dimensions must be multiples of BS+2");
  AABFT_REQUIRE(a_pmax.size() == c_fc.rows(),
                "a_pmax must cover every row of C_fc");
  AABFT_REQUIRE(b_pmax.size() == c_fc.cols(),
                "b_pmax must cover every column of C_fc");
  const std::size_t grid_rows = c_fc.rows() / (bs + 2);
  const std::size_t grid_cols = c_fc.cols() / (bs + 2);

  // Data maxima per block row (compositional policy term).
  std::vector<double> a_block_max(grid_rows, 0.0);
  for (std::size_t br = 0; br < grid_rows; ++br)
    for (std::size_t i = 0; i < bs; ++i)
      a_block_max[br] = std::max(a_block_max[br],
                                 a_pmax[br * (bs + 2) + i].max_value());

  WeightedCheckReport report;
  core::Mutex report_mutex{core::LockRank::kKernelReduction,
                           "kernel.weighted_merge"};

  launcher.launch("check_weighted", Dim3{grid_cols, grid_rows, 1},
                  [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t gbr = blk.block.y;
    const std::size_t gbc = blk.block.x;
    const std::size_t row0 = gbr * (bs + 2);
    const std::size_t col0 = gbc * (bs + 2);
    math.load_doubles((bs + 2) * (bs + 2));

    const PMaxList& a_sum = a_pmax[codec.sum_index(gbr)];
    const PMaxList& a_weighted = a_pmax[codec.weighted_index(gbr)];

    std::vector<WeightedMismatch> local;
    for (std::size_t j = 0; j < bs + 2; ++j) {
      const std::size_t gc = col0 + j;
      double ref_s = 0.0;
      double ref_w = 0.0;
      for (std::size_t i = 0; i < bs; ++i) {
        const double v = c_fc(row0 + i, gc);
        ref_s = math.add(ref_s, v);
        ref_w = math.add(ref_w, math.mul(codec.weight(i), v));
      }
      const double stored_s = c_fc(row0 + bs, gc);
      const double stored_w = c_fc(row0 + bs + 1, gc);

      const double y_s = determine_upper_bound(a_sum, b_pmax[gc]);
      const double y_w = determine_upper_bound(a_weighted, b_pmax[gc]);
      // aabft-lint: allow (bound estimate, bulk-counted below)
      const double y_data = a_block_max[gbr] * b_pmax[gc].max_value();
      math.count_compares(2 * (a_sum.size() + a_weighted.size()) *
                          b_pmax[gc].size());
      const double eps_s = checksum_epsilon(inner_dim, bs, y_s, y_data, params);
      // The weighted reference multiplies data by weights up to BS: its own
      // rounding contribution is bounded with the scaled data magnitude.
      const double eps_w = checksum_epsilon(
          // aabft-lint: allow (bound scaling, bulk-counted below)
          inner_dim, bs, y_w, static_cast<double>(bs) * y_data, params);
      math.count_muls(14);
      math.count_adds(12);

      // Checksum deltas, counted as the two adds below.
      const double delta_s = ref_s - stored_s;  // aabft-lint: allow
      const double delta_w = ref_w - stored_w;  // aabft-lint: allow
      math.count_adds(2);
      math.count_compares(2);
      const bool sum_bad = !(std::fabs(delta_s) <= eps_s);
      const bool weighted_bad = !(std::fabs(delta_w) <= eps_w);
      if (!sum_bad && !weighted_bad) continue;

      WeightedMismatch mismatch;
      mismatch.block_row = gbr;
      mismatch.block_col = gbc;
      mismatch.local_col = j;
      mismatch.delta_sum = delta_s;
      mismatch.delta_weighted = delta_w;
      mismatch.epsilon_sum = eps_s;
      mismatch.epsilon_weighted = eps_w;

      if (sum_bad && weighted_bad) {
        // Data element: w = delta_w / delta_s must be (close to) an integer
        // weight in [1, BS]. Demand a clear sum signal so the ratio is
        // meaningful.
        // Locator arithmetic on already-detected deltas (report path, not an
        // injection or accumulation site).
        if (std::isfinite(delta_s) && std::isfinite(delta_w) &&
            std::fabs(delta_s) > 2.0 * eps_s) {  // aabft-lint: allow
          const double ratio = delta_w / delta_s;  // aabft-lint: allow
          const double rounded = std::round(ratio);
          if (rounded >= 1.0 && rounded <= static_cast<double>(bs) &&
              std::fabs(ratio - rounded) < 0.25) {  // aabft-lint: allow
            mismatch.local_row = static_cast<std::size_t>(rounded) - 1;
          }
        }
      } else if (sum_bad) {
        mismatch.local_row = bs;  // the plain checksum element itself
      } else {
        mismatch.local_row = bs + 1;  // the weighted checksum element
      }
      local.push_back(mismatch);
    }

    if (!local.empty()) {
      const core::MutexLock lock(report_mutex);
      report.mismatches.insert(report.mismatches.end(), local.begin(),
                               local.end());
    }
  });

  return report;
}

WeightedAabftMultiplier::WeightedAabftMultiplier(gpusim::Launcher& launcher,
                                                 WeightedAabftConfig config)
    : launcher_(launcher), config_(config), codec_(config.bs) {
  AABFT_REQUIRE(config_.p >= 1 && config_.gemm.valid() &&
                    config_.bounds.fma == config_.gemm.use_fma,
                "invalid weighted A-ABFT configuration");
}

WeightedAabftResult WeightedAabftMultiplier::multiply(const Matrix& a,
                                                      const Matrix& b) {
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const WeightedEncoded a_cc =
      weighted_encode_columns(launcher_, a, codec_, config_.p);
  const WeightedEncoded b_rc =
      weighted_encode_rows(launcher_, b, codec_, config_.p);
  Matrix c_fc =
      linalg::blocked_matmul(launcher_, a_cc.data, b_rc.data, config_.gemm);

  WeightedAabftResult result;
  result.report = weighted_check_product(launcher_, c_fc, codec_, a_cc.pmax,
                                         b_rc.pmax, a.cols(), config_.bounds);

  if (!result.report.clean() && config_.correct_errors) {
    const std::size_t bs = codec_.bs();
    for (const auto& m : result.report.mismatches) {
      if (!m.local_row.has_value()) {
        result.uncorrectable = true;
        continue;
      }
      const std::size_t row0 = m.block_row * (bs + 2);
      const std::size_t gc = m.block_col * (bs + 2) + m.local_col;
      const std::size_t i = *m.local_row;
      // Rebuild from intact values only: subtracting delta_sum from the
      // corrupted element would be algebraically equivalent, but when the
      // corruption is huge the small terms are absorbed in ref/delta and the
      // reconstruction loses them (catastrophic cancellation). Summing the
      // intact elements avoids the corrupted magnitude entirely.
      if (i < bs) {
        double others = 0.0;
        for (std::size_t ii = 0; ii < bs; ++ii)
          if (ii != i) others += c_fc(row0 + ii, gc);
        c_fc(row0 + i, gc) = c_fc(row0 + bs, gc) - others;
      } else if (i == bs) {
        double ref = 0.0;
        for (std::size_t ii = 0; ii < bs; ++ii) ref += c_fc(row0 + ii, gc);
        c_fc(row0 + bs, gc) = ref;
      } else {
        double ref = 0.0;
        for (std::size_t ii = 0; ii < bs; ++ii)
          ref += codec_.weight(ii) * c_fc(row0 + ii, gc);
        c_fc(row0 + bs + 1, gc) = ref;
      }
      ++result.corrected;
    }
    if (result.corrected > 0) {
      const WeightedCheckReport recheck = weighted_check_product(
          launcher_, c_fc, codec_, a_cc.pmax, b_rc.pmax, a.cols(),
          config_.bounds);
      result.recheck_clean = recheck.clean();
    }
  } else if (!result.report.clean()) {
    result.uncorrectable = true;
    result.recheck_clean = false;
  }

  result.c = codec_.strip(c_fc);
  return result;
}

}  // namespace aabft::abft
