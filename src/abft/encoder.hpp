// Encode kernels — paper Algorithm 1 (and its row-checksum twin).
//
// One kernel launch encodes a matrix block-wise AND determines, per BS x BS
// sub-matrix, the p largest absolute values of each vector segment (rows of A
// / columns of B), including the freshly computed checksum vector itself
// (Algorithm 1's localSums / maxSum path). A second, low-utilisation
// reduction kernel then merges the per-block lists into p global maxima per
// full vector — the paper runs this reduction concurrently with the matrix
// product.
//
// The result couples the encoded matrix with a PMaxTable indexed by encoded
// row (for A_cc) or encoded column (for B_rc); checksum vectors therefore
// have their own p-max lists, which is what lets the check kernel bound the
// checksum elements' inner products directly.
#pragma once

#include <cstddef>

#include "abft/checksum.hpp"
#include "abft/pmax.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

struct EncodedMatrix {
  linalg::Matrix data;  ///< A_cc or B_rc
  PMaxTable pmax;       ///< per encoded row (A) / per encoded column (B)
};

/// Encode A into the column-checksum matrix A_cc and collect p-max lists for
/// every encoded row. Requires codec.divides(a.rows()).
[[nodiscard]] EncodedMatrix encode_columns(gpusim::Launcher& launcher,
                                           const linalg::Matrix& a,
                                           const PartitionedCodec& codec,
                                           std::size_t p);

/// Encode B into the row-checksum matrix B_rc and collect p-max lists for
/// every encoded column. Requires codec.divides(b.cols()).
[[nodiscard]] EncodedMatrix encode_rows(gpusim::Launcher& launcher,
                                        const linalg::Matrix& b,
                                        const PartitionedCodec& codec,
                                        std::size_t p);

}  // namespace aabft::abft
