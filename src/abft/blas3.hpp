// Protected BLAS-3 / one-sided factorizations beyond GEMM.
//
// The paper presents A-ABFT for matrix multiplication but notes the approach
// "is much more general"; the FT-LAPACK line of work (Wu & Chen's
// FT-Cholesky/LU, MAGMA's abft_dgemm checker) extends checksum protection to
// the factorizations by (a) protecting every O(n^3) trailing update with the
// checked GEMM and (b) *carrying* the trailing matrix's checksums across
// panel updates, verifying them before each panel is consumed (the
// CHECK_BEFORE pattern) so silent corruption between updates cannot leak
// into the factors. This module implements that construction on top of the
// A-ABFT multiplier:
//
//   - ProtectedSyrk:      C = A * A^T through the full A-ABFT pipeline
//                         (encode, product, autonomous check, correction,
//                         block recompute, full recompute).
//   - ProtectedCholesky:  right-looking blocked Cholesky; host panel +
//                         triangular solve, protected SYRK trailing updates,
//                         checksum carry across panels.
//   - ChecksumCarry:      the carried block-column sums both factorizations
//                         (this module's Cholesky and protected_lu.hpp's LU)
//                         maintain and verify.
//   - raw_syrk / raw_cholesky / raw_lu: unprotected references with
//                         launcher-backed trailing updates — the overhead
//                         baselines of bench_blas3, and the replicas the TMR
//                         scheme votes over (fault-injectable through the
//                         launcher, unlike a pure host loop).
#pragma once

#include <cstddef>
#include <vector>

#include "abft/aabft.hpp"
#include "abft/checksum.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

/// Carried per-block column sums of the active (trailing) matrix region
/// during a right-looking factorization.
///
/// State: S[br][j] = sum of m(i, j) over global row block br (rows
/// [br*BS, (br+1)*BS) clipped to n). The factorization initialises S from
/// the input (O(n^2)), then keeps it current *without* re-reading the
/// trailing matrix: each protected trailing update already computed verified
/// column-checksum rows (the c_fc of its A-ABFT GEMM), and subtracting those
/// from S is exactly the carry step of the MAGMA abft_dgemm checker. Row
/// pivoting is an O(n) sum adjustment per swap. Before a panel is factored,
/// the carried sums of the panel's columns are recomputed from the matrix
/// and compared (CHECK_BEFORE, O(n^2) total across the factorization):
/// a mismatch means the trailing matrix was corrupted *between* protected
/// updates — host arithmetic or storage damage the per-update GEMM check
/// cannot see — and the factorization restarts from the pristine input.
///
/// Carrying needs panel boundaries aligned to checksum blocks; when
/// panel % BS != 0 the carry disables itself and the factorization runs on
/// per-update protection alone.
class ChecksumCarry {
 public:
  ChecksumCarry(std::size_t n, std::size_t bs, std::size_t panel);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// O(n^2) initial block-column sums of the full matrix.
  void init(const linalg::Matrix& m);

  /// Account a pivoting row swap (call *before* the rows are exchanged).
  /// Only columns >= col_begin are adjusted: columns left of the active
  /// panel are final and the panel's own columns are mid-elimination —
  /// neither is ever verified again.
  void note_row_swap(const linalg::Matrix& m, std::size_t r1, std::size_t r2,
                     std::size_t col_begin);

  /// Carry a protected trailing update `m(k_end+i, k_end+j) -= update(i,j)`
  /// forward by subtracting the update's verified column-checksum rows
  /// (c_fc, padded encoded extents) from the carried sums. `n2` is the
  /// unpadded column count of the update; requires k_end % BS == 0.
  void apply_update(const linalg::Matrix& c_fc, const PartitionedCodec& codec,
                    std::size_t k_end, std::size_t n2);

  /// CHECK_BEFORE: recompute the block sums of columns [k0, k_end) over the
  /// active blocks (rows >= k0) and compare against the carried values.
  /// Returns the number of mismatched blocks (0 = consistent).
  [[nodiscard]] std::size_t verify_panel(const linalg::Matrix& m,
                                         std::size_t k0,
                                         std::size_t k_end) const;

 private:
  std::size_t n_ = 0;
  std::size_t bs_ = 0;
  std::size_t nblocks_ = 0;
  bool enabled_ = false;
  std::vector<double> sums_;  ///< nblocks_ x n_ carried block-column sums
  std::vector<double> mags_;  ///< accumulated magnitudes scaling the tolerance
};

/// Protected symmetric rank-k update C = A * A^T. SYRK is served by the full
/// A-ABFT GEMM pipeline on (A, A^T) — encode both operands, checked product,
/// correction/recompute ladder — with arbitrary extents padded internally.
class ProtectedSyrk {
 public:
  ProtectedSyrk(gpusim::Launcher& launcher, AabftConfig config)
      : mult_(launcher, config) {}

  /// C (m x m) = A * A^T with autonomous detection/correction. The result's
  /// c_fc keeps the padded encoded extents (like multiply_padded).
  [[nodiscard]] AabftResult multiply(const linalg::Matrix& a) {
    return mult_.multiply_padded(a, a.transposed());
  }

  [[nodiscard]] const AabftConfig& config() const noexcept {
    return mult_.config();
  }

 private:
  AabftMultiplier mult_;
};

struct CholResult {
  /// The lower-triangular factor (strictly-upper part zeroed): A = L * L^T.
  linalg::Matrix l;
  std::size_t protected_updates = 0;  ///< A-ABFT-protected trailing SYRKs run
  std::size_t faults_detected = 0;    ///< updates that flagged an error
  std::size_t panel_detections = 0;   ///< online k-panel screen mismatches
  std::size_t panel_recomputes = 0;   ///< fused-update tile panel replays
  bool fused_updates = false;         ///< updates ran the fused pipeline
  std::size_t corrections = 0;        ///< localised repairs applied
  std::size_t block_recomputes = 0;   ///< checksum blocks recomputed in place
  std::size_t recomputations = 0;     ///< transient-fault re-executions
  std::size_t carry_mismatches = 0;   ///< carried-checksum verifications failed
  std::size_t factor_restarts = 0;    ///< full refactor after a carry mismatch
  bool not_positive_definite = false; ///< a diagonal pivot was <= 0
  bool ok = true;                     ///< factorisation completed cleanly
};

struct ProtectedCholConfig {
  std::size_t panel = 32;  ///< blocking width of the factorisation
  AabftConfig aabft;       ///< protection of the trailing updates
};

/// Right-looking blocked Cholesky with protected trailing updates and
/// checksum carry: per panel, a host O(panel^3) diagonal-block factorisation
/// and O(n * panel^2) triangular solve, then the O(n^3) trailing update
/// A22 -= L21 * L21^T through the A-ABFT pipeline.
class ProtectedCholesky {
 public:
  ProtectedCholesky(gpusim::Launcher& launcher, ProtectedCholConfig config);

  /// Factor a symmetric positive-definite matrix: A = L * L^T. One carry
  /// mismatch restarts the factorisation from the pristine input; a second
  /// gives up (ok = false).
  [[nodiscard]] CholResult factor(const linalg::Matrix& a);

  /// max_ij |(A - L L^T)_ij| — reconstruction residual (test/diagnostic).
  [[nodiscard]] static double residual(const linalg::Matrix& a,
                                       const CholResult& chol);

 private:
  [[nodiscard]] CholResult factor_once(const linalg::Matrix& a);

  gpusim::Launcher& launcher_;
  ProtectedCholConfig config_;
};

// ---- unprotected references ------------------------------------------------

/// Raw SYRK: one launcher-backed blocked GEMM of (A, A^T), no protection.
[[nodiscard]] linalg::Matrix raw_syrk(gpusim::Launcher& launcher,
                                      const linalg::Matrix& a,
                                      const linalg::GemmConfig& gemm = {});

struct RawFactorResult {
  linalg::Matrix f;  ///< L (Cholesky) or combined LU factors
  std::vector<std::size_t> perm;  ///< pivoting permutation (LU only)
  bool ok = true;    ///< false: not positive definite / singular
};

/// Raw right-looking blocked Cholesky; trailing updates run through the
/// launcher's blocked GEMM (fault-injectable) but are never checked.
[[nodiscard]] RawFactorResult raw_cholesky(gpusim::Launcher& launcher,
                                           const linalg::Matrix& a,
                                           const linalg::GemmConfig& gemm = {},
                                           std::size_t panel = 32);

/// Raw right-looking blocked LU with partial pivoting; trailing updates run
/// through the launcher's blocked GEMM but are never checked.
[[nodiscard]] RawFactorResult raw_lu(gpusim::Launcher& launcher,
                                     const linalg::Matrix& a,
                                     const linalg::GemmConfig& gemm = {},
                                     std::size_t panel = 32);

}  // namespace aabft::abft
