// Probabilistic rounding-error model — paper Section IV.
//
// A-ABFT's central idea: instead of calibration runs or pessimistic analytic
// bounds, derive a confidence interval [EV - w*sigma, EV + w*sigma] for each
// checksum element from the Barlow/Bareiss model of rounding-error
// distributions, using only quantities that are cheap to collect at runtime
// (the p largest absolute values of the involved vectors).
//
// Mantissa-error moments (base 2, t mantissa bits, reciprocal mantissa
// distribution):
//   addition/subtraction:  EV(beta) = 0,          Var(beta) <= 1/8  * 2^-2t   (Eqs. 20, 21)
//   multiplication:        EV(beta) = 1/3 * 2^-2t, Var(beta) = 1/12 * 2^-2t   (Eqs. 34, 35)
//
// Summation of n terms whose k-th intermediate sum is bounded by k*y (Eq. 28):
//   sigma_sum <= sqrt(n(n+1)(2n+1)/48) * y * 2^-t
//
// Inner product of length n with every product bounded by y (Eq. 46):
//   sigma_ip  <= sqrt((n(n+1)(n+1/2) + 2n)/24) * 2^-t * y
//
// With hardware FMA the multiplication rounding disappears (Section IV-D) and
// only the summation term remains.
#pragma once

#include <cstddef>

#include "fp/bits.hpp"

namespace aabft::abft {

/// How the check kernel composes epsilon for a checksum comparison.
enum class BoundPolicy {
  /// The paper's formulation: apply the inner-product bound (Eq. 46) to the
  /// checksum element, with y taken from the runtime-determined maxima of
  /// the checksum vector itself.
  kPaperDirect,
  /// Additionally account for the rounding of the *reference* checksum
  /// (the recomputed sum of BS already-rounded result elements), which the
  /// comparison also contains. Slightly looser, strictly safer; an ablation
  /// bench quantifies the difference.
  kCompositional,
};

struct BoundParams {
  int t = fp::kPaperT;    ///< mantissa bits (52 for binary64)
  double omega = 3.0;     ///< confidence-interval width in standard deviations
  bool fma = false;       ///< GEMM kernel fuses mul+add (Section IV-D)
  BoundPolicy policy = BoundPolicy::kPaperDirect;
};

/// Var(beta) upper bound for addition/subtraction (Eq. 21).
[[nodiscard]] double var_beta_add(int t) noexcept;

/// EV(beta) for multiplication with symmetric rounding (Eq. 34).
[[nodiscard]] double ev_beta_mul(int t) noexcept;

/// Var(beta) for multiplication with symmetric rounding (Eq. 35).
[[nodiscard]] double var_beta_mul(int t) noexcept;

/// Eq. (28): standard deviation of the summation rounding error for n
/// addends when the k-th intermediate sum is bounded in magnitude by k*y.
[[nodiscard]] double sigma_sum(std::size_t n, double y, int t) noexcept;

/// Eq. (43): mean of the accumulated multiplication rounding error for n
/// products bounded by y. (The summation contributes zero mean, Eq. 22.)
[[nodiscard]] double ev_inner_product(std::size_t n, double y, int t) noexcept;

/// Eq. (46): standard deviation of the inner-product rounding error
/// (separate multiply and add, i.e. two roundings per term).
[[nodiscard]] double sigma_inner_product(std::size_t n, double y, int t) noexcept;

/// FMA variant (Section IV-D): only the summation variance remains.
[[nodiscard]] double sigma_inner_product_fma(std::size_t n, double y,
                                             int t) noexcept;

/// First two moments of the rounding error of one inner product of length n
/// whose products are bounded by y, under the given parameters.
struct RoundingStats {
  double mean = 0.0;
  double sigma = 0.0;
};

[[nodiscard]] RoundingStats inner_product_stats(std::size_t n, double y,
                                                const BoundParams& params);

/// The epsilon used when comparing one checksum element against its
/// recomputed reference:
///   n       — inner-product length (K dimension of the multiply),
///   bs      — checksum block size (number of result elements summed into
///             the reference checksum),
///   y_cs    — runtime upper bound on |a_cs,k * b_kj| for the checksum
///             element's own inner product,
///   y_data  — runtime upper bound on |a_ik * b_kj| for the data elements
///             (used only by the compositional policy).
[[nodiscard]] double checksum_epsilon(std::size_t n, std::size_t bs, double y_cs,
                                      double y_data, const BoundParams& params);

}  // namespace aabft::abft
