// A-ABFT-protected matrix-vector multiplication.
//
// The original ABFT construction (Huang/Abraham) starts from the matrix-
// vector case: encode A with column checksums, compute y = A_cc * x, and the
// extra result element y_cs must equal the sum of the data elements. The
// autonomous part carries over directly: the comparison bound comes from the
// Section-IV inner-product model with the runtime maxima of A's checksum
// rows and of the vector x.
//
// GEMV is the kernel of iterative methods (CG, GMRES, power iteration), so a
// protected y = A x makes those methods fault-tolerant without restructuring.
#pragma once

#include <cstddef>
#include <vector>

#include "abft/bounds.hpp"
#include "abft/checksum.hpp"
#include "abft/aabft.hpp"
#include "abft/encoder.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

struct GemvMismatch {
  std::size_t block = 0;     ///< block row of A whose checksum failed
  double reference = 0.0;    ///< recomputed sum of the block's y elements
  double stored = 0.0;       ///< checksum element that went through the GEMV
  double epsilon = 0.0;
};

struct GemvResult {
  std::vector<double> y;               ///< the m data elements of A x
  std::vector<GemvMismatch> mismatches;
  std::size_t recomputations = 0;
  bool ok = true;
  [[nodiscard]] bool error_detected() const noexcept {
    return !mismatches.empty();
  }
};

/// One-shot protected GEMV: encodes A (or use the class below to amortise
/// the encoding over many products with the same A).
class ProtectedGemv {
 public:
  /// Encoding happens once here; every multiply() reuses it — the right
  /// shape for iterative solvers where A is fixed and x changes.
  ProtectedGemv(gpusim::Launcher& launcher, const linalg::Matrix& a,
                AabftConfig config);

  [[nodiscard]] GemvResult multiply(const std::vector<double>& x);

  [[nodiscard]] const linalg::Matrix& encoded() const noexcept {
    return a_cc_.data;
  }

 private:
  gpusim::Launcher& launcher_;
  AabftConfig config_;
  PartitionedCodec codec_;
  EncodedMatrix a_cc_;
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace aabft::abft
