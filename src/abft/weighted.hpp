// Weighted-checksum ABFT — the Jou/Abraham extension (paper reference [11]),
// implemented on top of the A-ABFT bound machinery.
//
// Each BS x BS block of A carries TWO checksum rows:
//
//   plain    : cs_j  = sum_i a_ij
//   weighted : wcs_j = sum_i w_i * a_ij          with weights w_i = i + 1
//
// (and symmetrically two checksum columns per block of B). Because both rows
// are linear combinations of the data rows, the block product preserves both
// invariants. The payoff over plain checksums: a single corrupted element in
// a column is *localised from the column checks alone* —
//
//   delta_s = ref_s - cs,  delta_w = ref_w - wcs,  row = delta_w / delta_s - 1
//
// — and corrected by subtracting delta_s, without any row checksums. The
// rounding-error bounds for both comparisons come from the same autonomous
// Section-IV model, with the weighted row's own p-max list collected at
// encode time (exactly like A-ABFT treats the plain checksum vector).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "abft/bounds.hpp"
#include "abft/pmax.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

/// Index arithmetic for the two-checksum-row layout: each block of BS data
/// lines is followed by its plain and weighted checksum lines (stride BS+2).
class WeightedCodec {
 public:
  explicit WeightedCodec(std::size_t bs) : bs_(bs) {
    AABFT_REQUIRE(bs >= 2, "checksum block size must be at least 2");
  }

  [[nodiscard]] std::size_t bs() const noexcept { return bs_; }

  [[nodiscard]] bool divides(std::size_t dim) const noexcept {
    return dim > 0 && dim % bs_ == 0;
  }

  [[nodiscard]] std::size_t num_blocks(std::size_t dim) const {
    AABFT_REQUIRE(divides(dim), "dimension must be a multiple of BS");
    return dim / bs_;
  }

  [[nodiscard]] std::size_t encoded_dim(std::size_t dim) const {
    return dim + 2 * num_blocks(dim);
  }

  [[nodiscard]] std::size_t enc_index(std::size_t i) const noexcept {
    return i + 2 * (i / bs_);
  }

  [[nodiscard]] std::size_t sum_index(std::size_t block) const noexcept {
    return block * (bs_ + 2) + bs_;
  }

  [[nodiscard]] std::size_t weighted_index(std::size_t block) const noexcept {
    return block * (bs_ + 2) + bs_ + 1;
  }

  [[nodiscard]] bool is_checksum_index(std::size_t e) const noexcept {
    return e % (bs_ + 2) >= bs_;
  }

  [[nodiscard]] std::size_t block_of(std::size_t e) const noexcept {
    return e / (bs_ + 2);
  }

  /// Weight of data line i within its block (w = local index + 1).
  [[nodiscard]] double weight(std::size_t local) const noexcept {
    return static_cast<double>(local + 1);
  }

  /// Host-side encodes (reference for the kernels, used by tests).
  [[nodiscard]] linalg::Matrix encode_columns_host(const linalg::Matrix& a) const;
  [[nodiscard]] linalg::Matrix encode_rows_host(const linalg::Matrix& b) const;

  /// Strip all checksum lines from a full-checksum product.
  [[nodiscard]] linalg::Matrix strip(const linalg::Matrix& c_fc) const;

 private:
  std::size_t bs_;
};

struct WeightedEncoded {
  linalg::Matrix data;
  PMaxTable pmax;  ///< per encoded line (data, sum and weighted checksums)
};

/// Encode kernels fused with p-max collection (Algorithm-1 style, with the
/// weighted accumulation added).
[[nodiscard]] WeightedEncoded weighted_encode_columns(gpusim::Launcher& launcher,
                                                      const linalg::Matrix& a,
                                                      const WeightedCodec& codec,
                                                      std::size_t p);
[[nodiscard]] WeightedEncoded weighted_encode_rows(gpusim::Launcher& launcher,
                                                   const linalg::Matrix& b,
                                                   const WeightedCodec& codec,
                                                   std::size_t p);

/// One column-check failure, with the ratio-localised row when reliable.
struct WeightedMismatch {
  std::size_t block_row = 0;
  std::size_t block_col = 0;
  std::size_t local_col = 0;        ///< 0..BS+1 (checksum columns included)
  double delta_sum = 0.0;           ///< ref_s - stored_s
  double delta_weighted = 0.0;      ///< ref_w - stored_w
  double epsilon_sum = 0.0;
  double epsilon_weighted = 0.0;
  /// Row localised from delta_weighted / delta_sum, when the ratio lands
  /// close to an integer in [1, BS]; nullopt otherwise.
  std::optional<std::size_t> local_row;
};

struct WeightedCheckReport {
  std::vector<WeightedMismatch> mismatches;
  [[nodiscard]] bool clean() const noexcept { return mismatches.empty(); }
};

/// Column-checksum checks (both rows) over every block of the product.
[[nodiscard]] WeightedCheckReport weighted_check_product(
    gpusim::Launcher& launcher, const linalg::Matrix& c_fc,
    const WeightedCodec& codec, const PMaxTable& a_pmax,
    const PMaxTable& b_pmax, std::size_t inner_dim, const BoundParams& params);

struct WeightedAabftConfig {
  std::size_t bs = 32;
  std::size_t p = 2;
  BoundParams bounds;
  linalg::GemmConfig gemm;
  bool correct_errors = true;
};

struct WeightedAabftResult {
  linalg::Matrix c;
  WeightedCheckReport report;
  std::size_t corrected = 0;
  bool uncorrectable = false;
  bool recheck_clean = true;
  [[nodiscard]] bool error_detected() const noexcept { return !report.clean(); }
};

/// Protected multiply with weighted checksums: detection AND localisation
/// from column checks alone (no row checksums needed).
class WeightedAabftMultiplier {
 public:
  WeightedAabftMultiplier(gpusim::Launcher& launcher, WeightedAabftConfig config);

  [[nodiscard]] WeightedAabftResult multiply(const linalg::Matrix& a,
                                             const linalg::Matrix& b);

  [[nodiscard]] const WeightedCodec& codec() const noexcept { return codec_; }

 private:
  gpusim::Launcher& launcher_;
  WeightedAabftConfig config_;
  WeightedCodec codec_;
};

}  // namespace aabft::abft
