#include "abft/bounds.hpp"

#include <cmath>

#include "core/require.hpp"

namespace aabft::abft {

namespace {

/// 2^-t as a double (t up to 52 — always representable).
double pow2_neg(int t) noexcept { return std::ldexp(1.0, -t); }

}  // namespace

double var_beta_add(int t) noexcept {
  const double u = pow2_neg(t);
  return 0.125 * u * u;  // 1/8 * 2^-2t  (Eq. 21)
}

double ev_beta_mul(int t) noexcept {
  const double u = pow2_neg(t);
  return (1.0 / 3.0) * u * u;  // 1/3 * 2^-2t  (Eq. 34)
}

double var_beta_mul(int t) noexcept {
  const double u = pow2_neg(t);
  return (1.0 / 12.0) * u * u;  // 1/12 * 2^-2t  (Eq. 35)
}

double sigma_sum(std::size_t n, double y, int t) noexcept {
  if (n < 2) return 0.0;  // a single addend incurs no summation rounding
  const auto nd = static_cast<double>(n);
  // Eq. (28): sqrt(n(n+1)(2n+1)/48) * y * 2^-t.
  return std::sqrt(nd * (nd + 1.0) * (2.0 * nd + 1.0) / 48.0) * y * pow2_neg(t);
}

double ev_inner_product(std::size_t n, double y, int t) noexcept {
  // Eq. (43): n/3 * 2^-2t * y. (Summation mean is zero, Eq. 22.)
  const double u = pow2_neg(t);
  return static_cast<double>(n) / 3.0 * u * u * y;
}

double sigma_inner_product(std::size_t n, double y, int t) noexcept {
  if (n == 0) return 0.0;
  const auto nd = static_cast<double>(n);
  // Eq. (46): sqrt((n(n+1)(n+1/2) + 2n)/24) * 2^-t * y, which is
  // sqrt(Var_sum + Var_prod) with Var_sum from Eq. (28) and
  // Var_prod = n/12 * 2^-2t * y^2 (Eq. 41).
  return std::sqrt((nd * (nd + 1.0) * (nd + 0.5) + 2.0 * nd) / 24.0) *
         pow2_neg(t) * y;
}

double sigma_inner_product_fma(std::size_t n, double y, int t) noexcept {
  // Section IV-D: fused multiply-add rounds only the addition, so the
  // product variance term vanishes and Eq. (28) alone applies.
  return sigma_sum(n, y, t);
}

RoundingStats inner_product_stats(std::size_t n, double y,
                                  const BoundParams& params) {
  AABFT_REQUIRE(y >= 0.0, "upper bound y must be non-negative");
  AABFT_REQUIRE(params.t > 0 && params.t <= 52, "t must be in (0, 52]");
  RoundingStats stats;
  if (params.fma) {
    stats.mean = 0.0;
    stats.sigma = sigma_inner_product_fma(n, y, params.t);
  } else {
    stats.mean = ev_inner_product(n, y, params.t);
    stats.sigma = sigma_inner_product(n, y, params.t);
  }
  return stats;
}

double checksum_epsilon(std::size_t n, std::size_t bs, double y_cs,
                        double y_data, const BoundParams& params) {
  AABFT_REQUIRE(params.omega > 0.0, "omega must be positive");
  AABFT_REQUIRE(y_cs >= 0.0 && y_data >= 0.0, "upper bounds must be non-negative");

  const RoundingStats cs = inner_product_stats(n, y_cs, params);
  double sigma = cs.sigma;
  double mean = cs.mean;

  if (params.policy == BoundPolicy::kCompositional) {
    // The reference checksum sums bs result elements, each itself an inner
    // product of length n bounded by y_data; the summation's intermediate
    // results are bounded by k * (n * y_data). Sigmas combine in quadrature
    // via hypot — squaring them directly would underflow for very small
    // magnitudes (sigma ~ 1e-200 squares to 0).
    const RoundingStats data = inner_product_stats(n, y_data, params);
    const double s_data =
        std::sqrt(static_cast<double>(bs)) * data.sigma;
    const double s_sum =
        sigma_sum(bs, static_cast<double>(n) * y_data, params.t);
    sigma = std::hypot(sigma, std::hypot(s_data, s_sum));
    mean += static_cast<double>(bs) * data.mean;
  }

  return mean + params.omega * sigma;
}

}  // namespace aabft::abft
