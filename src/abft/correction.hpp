// Error localisation and single-error correction.
//
// Classic ABFT localisation (Huang/Abraham): a single corrupted element in a
// full-checksum block produces exactly one mismatching column checksum and
// one mismatching row checksum; their intersection is the element. With the
// partitioned encoding every BS+1 x BS+1 block is independently correctable,
// so one fault per block — even many faults across blocks — can be repaired.
//
// The corrected value is rebuilt from the checksum that went *through* the
// multiplication (data elements) or by recomputation from intact data lines
// (checksum elements). Correction is exact up to the rounding of a BS-term
// sum, i.e. within the same noise the bounds already absorb.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "abft/checker.hpp"
#include "abft/checksum.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

/// One applied correction.
struct Correction {
  std::size_t block_row = 0;  ///< block coordinates within the C_fc grid
  std::size_t block_col = 0;
  std::size_t local_row = 0;  ///< 0..BS; BS designates the checksum line
  std::size_t local_col = 0;
  double old_value = 0.0;
  double new_value = 0.0;
};

struct CorrectionOutcome {
  std::vector<Correction> corrections;  ///< applied patches
  /// True when at least one block's mismatches did not localise to a single
  /// element (e.g. two faults in one block): the block needs recomputation.
  bool uncorrectable = false;
};

/// Localise the mismatches of `report` block-wise and patch every uniquely
/// localised error in `c_fc` in place.
[[nodiscard]] CorrectionOutcome locate_and_correct(
    linalg::Matrix& c_fc, const CheckReport& report,
    const PartitionedCodec& codec);

/// Distinct (block_row, block_col) coordinates flagged by a report, in
/// first-mismatch order — the work list for recompute_blocks.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> flagged_blocks(
    const CheckReport& report);

/// Recompute the listed (BS+1) x (BS+1) blocks of `c_fc` from the encoded
/// operands, one simulated thread block per checksum block. Each element is
/// re-derived as an ascending-k inner product with the same rounding as the
/// product kernel's accumulation, so a recomputed block is *bit-identical*
/// to a fault-free blocked_matmul — unlike checksum-based correction, which
/// is only exact up to a BS-term-sum rounding. The middle rung of the
/// recovery ladder: cheaper than re-executing the whole product (O(blocks *
/// BS^2 * K)), stronger than correction when several errors share a block.
/// Runs through MathCtx span helpers only; armed faults cannot target this
/// repair kernel (its output is re-checked by the caller regardless).
void recompute_blocks(gpusim::Launcher& launcher, linalg::Matrix& c_fc,
                      const linalg::Matrix& a_cc, const linalg::Matrix& b_rc,
                      std::span<const std::pair<std::size_t, std::size_t>> blocks,
                      const PartitionedCodec& codec,
                      const linalg::GemmConfig& gemm);

}  // namespace aabft::abft
