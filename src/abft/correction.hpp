// Error localisation and single-error correction.
//
// Classic ABFT localisation (Huang/Abraham): a single corrupted element in a
// full-checksum block produces exactly one mismatching column checksum and
// one mismatching row checksum; their intersection is the element. With the
// partitioned encoding every BS+1 x BS+1 block is independently correctable,
// so one fault per block — even many faults across blocks — can be repaired.
//
// The corrected value is rebuilt from the checksum that went *through* the
// multiplication (data elements) or by recomputation from intact data lines
// (checksum elements). Correction is exact up to the rounding of a BS-term
// sum, i.e. within the same noise the bounds already absorb.
#pragma once

#include <vector>

#include "abft/checker.hpp"
#include "abft/checksum.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

/// One applied correction.
struct Correction {
  std::size_t block_row = 0;  ///< block coordinates within the C_fc grid
  std::size_t block_col = 0;
  std::size_t local_row = 0;  ///< 0..BS; BS designates the checksum line
  std::size_t local_col = 0;
  double old_value = 0.0;
  double new_value = 0.0;
};

struct CorrectionOutcome {
  std::vector<Correction> corrections;  ///< applied patches
  /// True when at least one block's mismatches did not localise to a single
  /// element (e.g. two faults in one block): the block needs recomputation.
  bool uncorrectable = false;
};

/// Localise the mismatches of `report` block-wise and patch every uniquely
/// localised error in `c_fc` in place.
[[nodiscard]] CorrectionOutcome locate_and_correct(
    linalg::Matrix& c_fc, const CheckReport& report,
    const PartitionedCodec& codec);

}  // namespace aabft::abft
