#include "abft/chain.hpp"

#include "core/require.hpp"

namespace aabft::abft {

using linalg::Matrix;

ChainResult multiply_chain(gpusim::Launcher& launcher,
                           const std::vector<const Matrix*>& chain,
                           const AabftConfig& config) {
  AABFT_REQUIRE(!chain.empty(), "a product chain needs at least one matrix");
  for (const Matrix* m : chain)
    AABFT_REQUIRE(m != nullptr && !m->empty(), "chain matrices must be set");
  for (std::size_t i = 0; i + 1 < chain.size(); ++i)
    AABFT_REQUIRE(chain[i]->cols() == chain[i + 1]->rows(),
                  "chain inner dimensions must agree");

  AabftMultiplier mult(launcher, config);

  ChainResult result;
  result.c = *chain.front();
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const AabftResult link = mult.multiply_padded(result.c, *chain[i]);
    ++result.multiplies;
    if (link.error_detected()) ++result.faults_detected;
    result.corrections += link.corrections.size();
    result.recomputations += link.recomputations;
    if (link.uncorrectable || !link.recheck_clean) result.ok = false;
    result.c = link.c;
  }
  return result;
}

}  // namespace aabft::abft
