// Tracking of the p largest absolute values (and their indices) of a vector.
//
// A-ABFT's runtime upper-bound determination (Section IV-E) needs, for every
// row vector of A_cc and every column vector of B_rc, the p elements with the
// largest absolute values and their positions. The encode kernel collects
// them per BS x BS sub-matrix (Algorithm 1, Figure 3); a global reduction
// merges the per-block lists into p values per full vector.
#pragma once

#include <array>
#include <cstddef>
#include <limits>
#include <vector>

#include "core/require.hpp"

namespace aabft::abft {

struct PMaxEntry {
  double value = 0.0;      ///< absolute value (>= 0)
  std::size_t index = 0;   ///< position within the full vector
};

/// A fixed-capacity, descending-sorted list of the largest absolute values
/// seen so far. Capacity is the paper's parameter p (typically 2).
///
/// Storage is inline (no heap): the encoders allocate one list per
/// (vector, block) candidate slot — tens of thousands for a single encode —
/// and a vector-backed entry array made that a per-list allocation storm
/// that dominated the encode hot path.
class PMaxList {
 public:
  /// Largest supported p. The paper uses p = 2; anything beyond a handful of
  /// maxima stops refining the bound (Section IV-E), so the cap is generous.
  static constexpr std::size_t kMaxP = 8;

  PMaxList() = default;
  explicit PMaxList(std::size_t p) : capacity_(p) {
    AABFT_REQUIRE(p >= 1, "p must be at least 1");
    AABFT_REQUIRE(p <= kMaxP, "p exceeds PMaxList::kMaxP");
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] const PMaxEntry& operator[](std::size_t i) const {
    AABFT_REQUIRE(i < size_, "PMaxList index out of range");
    return entries_[i];
  }

  /// Largest tracked absolute value (0 if empty).
  [[nodiscard]] double max_value() const noexcept {
    return size_ == 0 ? 0.0 : entries_.front().value;
  }

  /// Smallest tracked absolute value, i.e. the p-th largest of the vector
  /// once the list is full (0 if empty).
  [[nodiscard]] double min_value() const noexcept {
    return size_ == 0 ? 0.0 : entries_[size_ - 1].value;
  }

  /// Whether the list is full: min_value() is then a valid upper bound for
  /// every element *not* in the list.
  [[nodiscard]] bool saturated() const noexcept { return size_ == capacity_; }

  /// Offer a candidate; kept only if it ranks among the p largest. Returns
  /// the number of comparisons performed (for op accounting in kernels).
  std::size_t offer(double abs_value, std::size_t index) {
    AABFT_REQUIRE(abs_value >= 0.0, "offer expects an absolute value");
    std::size_t comparisons = 1;
    if (size_ == capacity_ && abs_value <= entries_[size_ - 1].value)
      return comparisons;
    // Insertion into the (tiny) sorted array. When saturated the early-out
    // above guarantees the new value ranks strictly above the last entry, so
    // the insertion position is always < capacity_.
    std::size_t pos = size_;
    while (pos > 0 && entries_[pos - 1].value < abs_value) {
      --pos;
      ++comparisons;
    }
    const std::size_t last = size_ < capacity_ ? size_ : capacity_ - 1;
    for (std::size_t i = last; i > pos; --i) entries_[i] = entries_[i - 1];
    entries_[pos] = PMaxEntry{abs_value, index};
    if (size_ < capacity_) ++size_;
    return comparisons;
  }

  /// Merge another list into this one (global reduction step). Returns the
  /// comparison count.
  std::size_t merge(const PMaxList& other) {
    std::size_t comparisons = 0;
    for (std::size_t i = 0; i < other.size(); ++i)
      comparisons += offer(other[i].value, other[i].index);
    return comparisons;
  }

  /// Whether `index` is one of the tracked positions.
  [[nodiscard]] bool contains(std::size_t index) const noexcept {
    for (std::size_t i = 0; i < size_; ++i)
      if (entries_[i].index == index) return true;
    return false;
  }

  /// Value at a tracked index; requires contains(index).
  [[nodiscard]] double value_at(std::size_t index) const {
    for (std::size_t i = 0; i < size_; ++i)
      if (entries_[i].index == index) return entries_[i].value;
    AABFT_REQUIRE(false, "index not tracked by this PMaxList");
    return 0.0;
  }

 private:
  std::size_t capacity_ = 2;
  std::size_t size_ = 0;
  std::array<PMaxEntry, kMaxP> entries_{};
};

/// One PMaxList per vector (per encoded row of A_cc / encoded column of B_rc).
using PMaxTable = std::vector<PMaxList>;

}  // namespace aabft::abft
