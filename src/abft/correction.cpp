#include "abft/correction.hpp"

#include <map>

#include "core/require.hpp"

namespace aabft::abft {

using linalg::Matrix;

CorrectionOutcome locate_and_correct(Matrix& c_fc, const CheckReport& report,
                                     const PartitionedCodec& codec) {
  const std::size_t bs = codec.bs();
  AABFT_REQUIRE(c_fc.rows() % (bs + 1) == 0 && c_fc.cols() % (bs + 1) == 0,
                "C_fc dimensions must be multiples of BS+1");

  // Group mismatches per block.
  struct BlockMismatches {
    std::vector<const Mismatch*> columns;
    std::vector<const Mismatch*> rows;
  };
  std::map<std::pair<std::size_t, std::size_t>, BlockMismatches> blocks;
  for (const auto& m : report.mismatches) {
    auto& entry = blocks[{m.block_row, m.block_col}];
    (m.kind == CheckKind::kColumn ? entry.columns : entry.rows).push_back(&m);
  }

  CorrectionOutcome outcome;
  for (const auto& [coords, mm] : blocks) {
    const auto [gbr, gbc] = coords;
    const std::size_t row0 = gbr * (bs + 1);
    const std::size_t col0 = gbc * (bs + 1);

    // A single corrupted element produces exactly one column and one row
    // mismatch; anything else cannot be localised within this block.
    if (mm.columns.size() != 1 || mm.rows.size() != 1) {
      outcome.uncorrectable = true;
      continue;
    }
    const std::size_t j = mm.columns.front()->local;
    const std::size_t i = mm.rows.front()->local;

    Correction corr;
    corr.block_row = gbr;
    corr.block_col = gbc;
    corr.local_row = i;
    corr.local_col = j;
    corr.old_value = c_fc(row0 + i, col0 + j);

    if (i == bs && j == bs) {
      // Corner (checksum of checksums): recompute from the checksum row.
      double sum = 0.0;
      for (std::size_t jj = 0; jj < bs; ++jj) sum += c_fc(row0 + bs, col0 + jj);
      corr.new_value = sum;
    } else if (i == bs) {
      // Column-checksum element: recompute from the data column.
      double sum = 0.0;
      for (std::size_t ii = 0; ii < bs; ++ii) sum += c_fc(row0 + ii, col0 + j);
      corr.new_value = sum;
    } else if (j == bs) {
      // Row-checksum element: recompute from the data row.
      double sum = 0.0;
      for (std::size_t jj = 0; jj < bs; ++jj) sum += c_fc(row0 + i, col0 + jj);
      corr.new_value = sum;
    } else {
      // Data element: rebuild it from the column checksum that went through
      // the multiplication minus the remaining (intact) column elements.
      double others = 0.0;
      for (std::size_t ii = 0; ii < bs; ++ii)
        if (ii != i) others += c_fc(row0 + ii, col0 + j);
      corr.new_value = c_fc(row0 + bs, col0 + j) - others;
    }

    c_fc(row0 + i, col0 + j) = corr.new_value;
    outcome.corrections.push_back(corr);
  }
  return outcome;
}

}  // namespace aabft::abft
