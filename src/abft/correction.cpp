#include "abft/correction.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "core/require.hpp"

namespace aabft::abft {

using linalg::Matrix;

CorrectionOutcome locate_and_correct(Matrix& c_fc, const CheckReport& report,
                                     const PartitionedCodec& codec) {
  const std::size_t bs = codec.bs();
  AABFT_REQUIRE(c_fc.rows() % (bs + 1) == 0 && c_fc.cols() % (bs + 1) == 0,
                "C_fc dimensions must be multiples of BS+1");

  // Group mismatches per block.
  struct BlockMismatches {
    std::vector<const Mismatch*> columns;
    std::vector<const Mismatch*> rows;
  };
  std::map<std::pair<std::size_t, std::size_t>, BlockMismatches> blocks;
  for (const auto& m : report.mismatches) {
    auto& entry = blocks[{m.block_row, m.block_col}];
    (m.kind == CheckKind::kColumn ? entry.columns : entry.rows).push_back(&m);
  }

  CorrectionOutcome outcome;
  for (const auto& [coords, mm] : blocks) {
    const auto [gbr, gbc] = coords;
    const std::size_t row0 = gbr * (bs + 1);
    const std::size_t col0 = gbc * (bs + 1);

    // A single corrupted element produces exactly one column and one row
    // mismatch; anything else cannot be localised within this block.
    if (mm.columns.size() != 1 || mm.rows.size() != 1) {
      outcome.uncorrectable = true;
      continue;
    }
    const std::size_t j = mm.columns.front()->local;
    const std::size_t i = mm.rows.front()->local;

    Correction corr;
    corr.block_row = gbr;
    corr.block_col = gbc;
    corr.local_row = i;
    corr.local_col = j;
    corr.old_value = c_fc(row0 + i, col0 + j);

    if (i == bs && j == bs) {
      // Corner (checksum of checksums): recompute from the checksum row.
      double sum = 0.0;
      for (std::size_t jj = 0; jj < bs; ++jj) sum += c_fc(row0 + bs, col0 + jj);
      corr.new_value = sum;
    } else if (i == bs) {
      // Column-checksum element: recompute from the data column.
      double sum = 0.0;
      for (std::size_t ii = 0; ii < bs; ++ii) sum += c_fc(row0 + ii, col0 + j);
      corr.new_value = sum;
    } else if (j == bs) {
      // Row-checksum element: recompute from the data row.
      double sum = 0.0;
      for (std::size_t jj = 0; jj < bs; ++jj) sum += c_fc(row0 + i, col0 + jj);
      corr.new_value = sum;
    } else {
      // Data element: rebuild it from the column checksum that went through
      // the multiplication minus the remaining (intact) column elements.
      double others = 0.0;
      for (std::size_t ii = 0; ii < bs; ++ii)
        if (ii != i) others += c_fc(row0 + ii, col0 + j);
      corr.new_value = c_fc(row0 + bs, col0 + j) - others;
    }

    c_fc(row0 + i, col0 + j) = corr.new_value;
    outcome.corrections.push_back(corr);
  }
  return outcome;
}

std::vector<std::pair<std::size_t, std::size_t>> flagged_blocks(
    const CheckReport& report) {
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  for (const auto& m : report.mismatches) {
    const std::pair<std::size_t, std::size_t> coords{m.block_row, m.block_col};
    if (std::find(blocks.begin(), blocks.end(), coords) == blocks.end())
      blocks.push_back(coords);
  }
  return blocks;
}

void recompute_blocks(gpusim::Launcher& launcher, Matrix& c_fc,
                      const Matrix& a_cc, const Matrix& b_rc,
                      std::span<const std::pair<std::size_t, std::size_t>> blocks,
                      const PartitionedCodec& codec,
                      const linalg::GemmConfig& gemm) {
  if (blocks.empty()) return;
  const std::size_t bs = codec.bs();
  const std::size_t k_dim = a_cc.cols();
  AABFT_REQUIRE(k_dim == b_rc.rows(), "encoded operand inner dims must agree");
  AABFT_REQUIRE(c_fc.rows() % (bs + 1) == 0 && c_fc.cols() % (bs + 1) == 0,
                "C_fc dimensions must be multiples of BS+1");

  const gpusim::Dim3 grid{blocks.size(), 1, 1};
  (void)launcher.launch("recompute_blocks", grid, [&](gpusim::BlockCtx& ctx) {
    const auto [gbr, gbc] = blocks[ctx.block.x];
    const std::size_t row0 = gbr * (bs + 1);
    const std::size_t col0 = gbc * (bs + 1);
    // Stage one B column at a time (strided gather, reused across the
    // block's BS+1 rows), then re-derive each element as an ascending-k
    // inner product from acc = 0 — the product kernel's exact operation
    // order and rounding, so the recomputed values are bit-identical to a
    // fault-free blocked_matmul.
    std::vector<double> b_col(k_dim);
    for (std::size_t j = 0; j <= bs; ++j) {
      for (std::size_t t = 0; t < k_dim; ++t) b_col[t] = b_rc(t, col0 + j);
      ctx.math.load_doubles(k_dim);
      for (std::size_t i = 0; i <= bs; ++i) {
        const double* a_row = a_cc.row(row0 + i).data();
        ctx.math.load_doubles(k_dim);
        const double value =
            gemm.use_fma ? ctx.math.dot_fma(a_row, b_col.data(), k_dim, 0.0)
                         : ctx.math.dot_mul_add(a_row, b_col.data(), k_dim, 0.0);
        c_fc(row0 + i, col0 + j) = value;
        ctx.math.store_doubles(1);
      }
    }
  });
}

}  // namespace aabft::abft
