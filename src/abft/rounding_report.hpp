// Per-element probabilistic rounding-error analysis — the "by-product" the
// paper's introduction mentions: "A-ABFT is able to deliver error functions
// or rounding error analyses for the performed operation with little
// additional overhead."
//
// From the p-max lists of A's rows and B's columns, the expected rounding
// error (EV) and its standard deviation (sigma) of every result element's
// inner product follow directly from the Section IV model — no extra passes
// over the data. The analysis is useful on its own (e.g. to decide whether a
// downstream algorithm can tolerate single precision) and as the
// classification baseline in fault-injection experiments.
#pragma once

#include <cstddef>

#include "abft/bounds.hpp"
#include "abft/pmax.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

struct RoundingAnalysis {
  linalg::Matrix mean;    ///< per element: expected rounding error (Eq. 43)
  linalg::Matrix sigma;   ///< per element: standard deviation (Eq. 46)
  double max_sigma = 0.0;
  double avg_sigma = 0.0;

  /// The omega-sigma confidence interval half-width of element (i, j).
  [[nodiscard]] double interval(std::size_t i, std::size_t j,
                                double omega) const {
    return mean(i, j) + omega * sigma(i, j);
  }
};

/// Analyse the product C = A * B (m x n times n x q) from the operands'
/// p-max tables (one list per row of A / column of B; use
/// collect_row_pmax / collect_col_pmax or the lists of an EncodedMatrix).
[[nodiscard]] RoundingAnalysis analyze_rounding(gpusim::Launcher& launcher,
                                                const PMaxTable& a_rows,
                                                const PMaxTable& b_cols,
                                                std::size_t inner_dim,
                                                const BoundParams& params);

}  // namespace aabft::abft
