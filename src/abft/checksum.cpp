#include "abft/checksum.hpp"

namespace aabft::abft {

using linalg::Matrix;

Matrix PartitionedCodec::encode_columns_host(const Matrix& a) const {
  AABFT_REQUIRE(divides(a.rows()), "rows of A must be a multiple of BS");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix enc(encoded_dim(m), n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t ei = enc_index(i);
    for (std::size_t j = 0; j < n; ++j) enc(ei, j) = a(i, j);
  }
  for (std::size_t blk = 0; blk < num_blocks(m); ++blk) {
    const std::size_t cs = checksum_index(blk);
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t i = 0; i < bs_; ++i) sum += a(blk * bs_ + i, j);
      enc(cs, j) = sum;
    }
  }
  return enc;
}

Matrix PartitionedCodec::encode_rows_host(const Matrix& b) const {
  AABFT_REQUIRE(divides(b.cols()), "columns of B must be a multiple of BS");
  const std::size_t n = b.rows();
  const std::size_t q = b.cols();
  Matrix enc(n, encoded_dim(q), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < q; ++j) enc(i, enc_index(j)) = b(i, j);
    for (std::size_t blk = 0; blk < num_blocks(q); ++blk) {
      double sum = 0.0;
      for (std::size_t j = 0; j < bs_; ++j) sum += b(i, blk * bs_ + j);
      enc(i, checksum_index(blk)) = sum;
    }
  }
  return enc;
}

Matrix PartitionedCodec::strip(const Matrix& c_fc) const {
  AABFT_REQUIRE(c_fc.rows() % (bs_ + 1) == 0 && c_fc.cols() % (bs_ + 1) == 0,
                "full-checksum matrix dimensions must be multiples of BS+1");
  const std::size_t m = c_fc.rows() / (bs_ + 1) * bs_;
  const std::size_t q = c_fc.cols() / (bs_ + 1) * bs_;
  Matrix out(m, q, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < q; ++j)
      out(i, j) = c_fc(enc_index(i), enc_index(j));
  return out;
}

bool PartitionedCodec::column_checksums_consistent(const Matrix& enc) const {
  AABFT_REQUIRE(enc.rows() % (bs_ + 1) == 0,
                "encoded rows must be a multiple of BS+1");
  for (std::size_t blk = 0; blk < enc.rows() / (bs_ + 1); ++blk) {
    const std::size_t cs = checksum_index(blk);
    for (std::size_t j = 0; j < enc.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t i = 0; i < bs_; ++i) sum += enc(blk * (bs_ + 1) + i, j);
      if (sum != enc(cs, j)) return false;
    }
  }
  return true;
}

bool PartitionedCodec::row_checksums_consistent(const Matrix& enc) const {
  AABFT_REQUIRE(enc.cols() % (bs_ + 1) == 0,
                "encoded columns must be a multiple of BS+1");
  for (std::size_t i = 0; i < enc.rows(); ++i) {
    for (std::size_t blk = 0; blk < enc.cols() / (bs_ + 1); ++blk) {
      double sum = 0.0;
      for (std::size_t j = 0; j < bs_; ++j) sum += enc(i, blk * (bs_ + 1) + j);
      if (sum != enc(i, checksum_index(blk))) return false;
    }
  }
  return true;
}

}  // namespace aabft::abft
