#include "abft/padding.hpp"

#include "core/require.hpp"

namespace aabft::abft {

using linalg::Matrix;

Matrix pad_to(const Matrix& m, std::size_t rows, std::size_t cols) {
  AABFT_REQUIRE(rows >= m.rows() && cols >= m.cols(),
                "pad_to target must not shrink the matrix");
  if (rows == m.rows() && cols == m.cols()) return m;
  Matrix out(rows, cols, 0.0);
  out.paste(m, 0, 0, m.rows(), m.cols(), 0, 0);
  return out;
}

Matrix unpad_to(const Matrix& m, std::size_t rows, std::size_t cols) {
  AABFT_REQUIRE(rows <= m.rows() && cols <= m.cols(),
                "unpad_to target must not grow the matrix");
  if (rows == m.rows() && cols == m.cols()) return m;
  Matrix out(rows, cols, 0.0);
  out.paste(m, 0, 0, rows, cols, 0, 0);
  return out;
}

}  // namespace aabft::abft
