// A-ABFT: the autonomously bounded, ABFT-protected matrix multiplication —
// the paper's primary contribution, assembled from the pieces of Section V:
//
//   1. encode kernels: checksum encoding fused with p-max determination
//      (Algorithm 1) for A (column checksums) and B (row checksums);
//   2. the block-based matrix product (Algorithm 3 kernel);
//   3. global reduction of block-wise maxima to p per vector;
//   4. check kernel: autonomous rounding-error bounds, reference checksums,
//      comparison (Algorithm 2);
//   5. error localisation at row/column mismatch intersections and
//      single-error correction from the checksum information.
//
// No calibration runs, no user-provided bounds: everything the check needs
// is collected while encoding.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "abft/bounds.hpp"
#include "abft/checker.hpp"
#include "abft/checksum.hpp"
#include "abft/correction.hpp"
#include "abft/encoder.hpp"
#include "abft/fused_gemm.hpp"
#include "abft/padding.hpp"
#include "core/result.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

struct AabftConfig {
  std::size_t bs = 32;        ///< checksum block size (partitioned encoding)
  std::size_t p = 2;          ///< tracked maxima per vector (paper uses p = 2)
  BoundParams bounds;         ///< omega, FMA mode, bound policy
  linalg::GemmConfig gemm;    ///< product-kernel blocking
  bool correct_errors = true; ///< attempt single-error correction
  /// Run the fused online-checking pipeline (fused_gemm.hpp): light encode +
  /// product with the checksum accumulation folded into the k-panel loop and
  /// screened per panel. Bit-identical to the classic path; the classic
  /// encoded operands are materialised lazily, only when a repair rung needs
  /// them.
  bool fused_gemm = false;
  /// Fused-kernel blocking and screen parameters. use_fma is kept in sync
  /// with gemm.use_fma by set_fma() / the pipeline.
  FusedGemmConfig fused;
  /// When correction alone does not yield a clean product, re-derive only
  /// the still-flagged (BS+1)x(BS+1) blocks from the encoded operands (see
  /// abft::recompute_blocks) up to this many rounds before falling back to a
  /// full re-execution. Bit-exact repair at O(blocks * BS^2 * K) cost; 0
  /// (the default) preserves the classic correct-then-full-recompute ladder.
  std::size_t max_block_recomputes = 0;
  /// When localisation fails (or the post-correction re-check still flags
  /// errors), re-execute the product and check once more — the standard
  /// recovery for transient faults. 0 disables recomputation.
  std::size_t max_recompute_attempts = 1;
  /// Cache-consistency guard for the preencoded (operand-cache) paths: every
  /// N-th multiply_preencoded / multiply_batch_preencoded problem re-runs the
  /// light encode of A and requires the cached side-buffer and p-max values
  /// to be bit-identical, throwing std::invalid_argument on a stale entry so
  /// soaks catch cache bugs instead of serving from them. 0 disables the
  /// check (the production default; the sampled check costs one extra encode
  /// pass per N problems).
  std::size_t cache_verify_every = 0;

  /// Keeps the GEMM kernel's FMA mode and the bound model consistent.
  void set_fma(bool fma) noexcept {
    bounds.fma = fma;
    gemm.use_fma = fma;
    fused.use_fma = fma;
  }

  [[nodiscard]] bool valid() const noexcept {
    return bs >= 2 && p >= 1 && gemm.valid() && fused.valid() &&
           bounds.fma == gemm.use_fma;
  }
};

struct AabftResult {
  linalg::Matrix c;                    ///< stripped m x q result
  linalg::Matrix c_fc;                 ///< full-checksum product (post-correction)
  CheckReport report;                  ///< mismatches of the *first* check pass
  std::vector<Correction> corrections; ///< applied single-error corrections
  bool uncorrectable = false;          ///< mismatches did not localise cleanly
  bool recheck_clean = true;           ///< the post-correction check passed
  std::size_t block_recomputes = 0;    ///< checksum blocks recomputed in place
  std::size_t recomputations = 0;      ///< full re-executions performed
  bool fused = false;                  ///< produced by the fused pipeline
  std::size_t panel_detections = 0;    ///< online panel-screen mismatches
  std::size_t panel_recomputes = 0;    ///< tile panel replays (ladder rung 0)

  [[nodiscard]] bool error_detected() const noexcept {
    return !report.clean();
  }
};

/// A pre-encoded left operand: borrowed views of the padded matrix, its
/// light encode (compact checksum side-buffer + p-max table) and, when the
/// consumer runs the classic (unfused) pipeline, optionally the materialised
/// encoded matrix A_cc. The serving operand cache owns the storage; the
/// multiplier only reads through these pointers for the duration of one
/// multiply. `a` and `light` are mandatory; `encoded` may be null (the
/// classic path then materialises A_cc from the sums, a pure layout copy).
struct PreencodedA {
  const linalg::Matrix* a = nullptr;
  const LightEncoded* light = nullptr;
  const linalg::Matrix* encoded = nullptr;
};

/// One problem of a preencoded batch: the shared pre-encoded A and this
/// request's B. Both pointers borrow; the batch call does not copy.
struct PreencodedProblem {
  const PreencodedA* a = nullptr;
  const linalg::Matrix* b = nullptr;
};

class AabftMultiplier {
 public:
  AabftMultiplier(gpusim::Launcher& launcher, AabftConfig config);

  /// Protected multiply: C = A * B with autonomous error detection (and, if
  /// configured, correction). Shape misuse — mismatched inner dimensions, or
  /// a.rows() / b.cols() not multiples of bs (pad beforehand, or use
  /// multiply_padded; the paper pads too) — is returned as an error, not
  /// thrown (DESIGN.md §4.7).
  [[nodiscard]] Result<AabftResult> multiply(const linalg::Matrix& a,
                                             const linalg::Matrix& b);

  /// Protected multiply of independent problems, pipelined across streams:
  /// the encode of problem i+1 overlaps the product/check of problem i, and
  /// whole problems run concurrently when workers allow. Results are
  /// bit-identical to sequential multiply() calls and indexed like
  /// `problems`. `streams` == 0 derives the lane count from the launcher's
  /// worker count. Problems with invalid shapes yield errors in their slot;
  /// the rest still run.
  [[nodiscard]] std::vector<Result<AabftResult>> multiply_batch(
      std::span<const std::pair<linalg::Matrix, linalg::Matrix>> problems,
      std::size_t streams = 0);

  /// Protected multiply with a pre-encoded A (operand-cache hit path): the
  /// O(m k) encode of A is skipped entirely — both pipelines consume the
  /// cached side-buffers, and results are bit-identical to multiply(*pre.a,
  /// b). Shape misuse comes back as an error; a stale cache entry caught by
  /// the sampled consistency guard (cache_verify_every) throws.
  [[nodiscard]] Result<AabftResult> multiply_preencoded(const PreencodedA& pre,
                                                        const linalg::Matrix& b);

  /// Batch counterpart of multiply_preencoded, pipelined across streams like
  /// multiply_batch. Problems may share one PreencodedA (the repeated-weight
  /// serving case) or mix different ones; results are indexed like
  /// `problems` and bit-identical to sequential multiply_preencoded calls.
  [[nodiscard]] std::vector<Result<AabftResult>> multiply_batch_preencoded(
      std::span<const PreencodedProblem> problems, std::size_t streams = 0);

  /// Epsilon-trace variant for the bound-quality experiments (Tables II-IV):
  /// identical to multiply() but records every epsilon the check computed.
  [[nodiscard]] AabftResult multiply_traced(const linalg::Matrix& a,
                                            const linalg::Matrix& b,
                                            EpsilonTrace& trace);

  /// Convenience for arbitrary shapes: zero-pads A's rows and B's columns up
  /// to the next block multiple (checksum-neutral, see padding.hpp), runs the
  /// protected multiply, and returns the unpadded m x q result. The
  /// full-checksum matrix in the result keeps the padded extents.
  [[nodiscard]] AabftResult multiply_padded(const linalg::Matrix& a,
                                            const linalg::Matrix& b);

  [[nodiscard]] const AabftConfig& config() const noexcept { return config_; }
  [[nodiscard]] const PartitionedCodec& codec() const noexcept { return codec_; }

 private:
  AabftResult run(const linalg::Matrix& a, const linalg::Matrix& b,
                  EpsilonTrace* trace, const PreencodedA* pre_a = nullptr);
  AabftResult run_fused(const linalg::Matrix& a, const linalg::Matrix& b,
                        EpsilonTrace* trace, const PreencodedA* pre_a);
  /// The sampled cache-consistency guard (config().cache_verify_every):
  /// re-derives A's light encode and requires bit-identity with the cached
  /// one. Throws std::invalid_argument on a stale entry.
  void maybe_verify_preencoded(const linalg::Matrix& a, const PreencodedA& pre);
  /// Steps 4-5 shared by the classic and fused pipelines: check, then the
  /// recovery ladder (correction, block recompute, full recompute), then
  /// strip. The encoded-operand providers are only invoked by repair rungs —
  /// the fused pipeline materialises them lazily.
  AabftResult settle(linalg::Matrix c_fc, const PMaxTable& a_pmax,
                     const PMaxTable& b_pmax, std::size_t k,
                     EpsilonTrace* trace,
                     const std::function<const linalg::Matrix&()>& encoded_a,
                     const std::function<const linalg::Matrix&()>& encoded_b);
  /// Recoverable-misuse check shared by multiply and multiply_batch.
  [[nodiscard]] std::optional<Error> validate(const linalg::Matrix& a,
                                              const linalg::Matrix& b) const;

  gpusim::Launcher& launcher_;
  AabftConfig config_;
  PartitionedCodec codec_;
  /// Preencoded problems served so far (drives the 1-in-N sampling of the
  /// consistency guard); relaxed — exact sampling phase is irrelevant.
  std::atomic<std::uint64_t> preencoded_served_{0};
};

}  // namespace aabft::abft
