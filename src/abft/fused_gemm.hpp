// Fused online-checking GEMM: checksum encoding folded into the product.
//
// The classic pipeline materialises A_cc / B_rc with standalone encode
// kernels before the product runs — an O(n^2) pass whose measured cost
// (BENCH_fastpath.json) dominated small/medium protected GEMMs. Following
// the FT-GEMM / "online fault tolerance" fusion idea, this module splits the
// encode into
//
//   1. a *light* encode pass per operand (encode_columns_light /
//      encode_rows_light): the compact checksum side-buffer (one block-sum
//      row/column per checksum block, O(n^2 / bs) storage) plus the p-max
//      tables — no encoded-matrix materialisation, no abs-matrix scratch,
//      single screened sweep instead of p max-scan passes;
//   2. a fused product kernel (fused_encode_matmul) whose tiles are aligned
//      to whole (BS+1) x (BS+1) checksum blocks and which stages encoded
//      rows/columns virtually — data rows from A itself, checksum rows from
//      the compact sums — so the product consumes the encoding without it
//      ever existing in memory.
//
// Because the per-element accumulation order (ascending k, final merge into
// a zero-initialised C) is independent of the blocking, the fused product is
// bit-identical to blocked_matmul over the materialised encoded operands.
//
// The fused kernel additionally *screens* its own column checksums at
// k-panel boundaries: each tile holds complete checksum blocks, so after a
// panel the partial accumulators must satisfy the column-checksum identity
// up to rounding. A violation is detected mid-product — panels, not whole
// operations, become the recompute blast radius (the serve ladder's earliest
// rung) — and repaired by replaying the tile's panels from k = 0. One-shot
// faults have been consumed by then, so the replay is clean and bit-exact.
#pragma once

#include <cstddef>

#include "abft/checksum.hpp"
#include "abft/pmax.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

/// Blocking and online-screen parameters of the fused kernel. Tile extents
/// are implied: BM = BN = BS + 1 (one checksum block per thread block), so
/// only the K-panel depth is free. rx/ry are the module-grid labels for
/// fault sites, mirroring GemmConfig's (i % rx) * ry + (j % ry) mapping.
struct FusedGemmConfig {
  std::size_t bk = 32;            ///< K-panel depth
  std::size_t rx = 4;             ///< module grid rows (fault-site labels)
  std::size_t ry = 4;             ///< module grid columns
  /// Screen the tile's column checksums every `check_stride` panels (and
  /// always after the last panel). 1 = screen every panel.
  std::size_t check_stride = 2;
  /// Panel-replay budget per tile: a screened mismatch replays the tile's
  /// panels from k = 0 at most this many times before deferring to the
  /// end-of-product check (which owns the authoritative bounds).
  std::size_t max_panel_recomputes = 2;
  bool use_fma = false;           ///< inner-loop FMA (must match the bounds)

  [[nodiscard]] bool valid() const noexcept {
    return bk >= 1 && rx >= 1 && ry >= 1 && check_stride >= 1;
  }
};

/// The light encode of one operand: the compact checksum buffer and the
/// per-vector p-max table.
///
/// For A (encode_columns_light): sums is (m / bs) x k — row br holds the
/// column checksums of A's block row br, i.e. exactly the bits
/// encode_columns writes into encoded row checksum_index(br).
/// For B (encode_rows_light): sums is k x (q / bs) — column bc holds the row
/// checksums of B's block column bc.
///
/// The p-max table is indexed by *encoded* row (A) / column (B), like
/// EncodedMatrix::pmax. Values and ordering match the standalone encoders
/// (largest first, ties kept in first-seen order); exact tie index choices
/// can differ from the max-scan-and-zero kernel when distinct positions hold
/// bit-equal magnitudes.
struct LightEncoded {
  linalg::Matrix sums;
  PMaxTable pmax;
};

LightEncoded encode_columns_light(gpusim::Launcher& launcher,
                                  const linalg::Matrix& a,
                                  const PartitionedCodec& codec,
                                  std::size_t p);

LightEncoded encode_rows_light(gpusim::Launcher& launcher,
                               const linalg::Matrix& b,
                               const PartitionedCodec& codec, std::size_t p);

/// Result of the fused product: the full-checksum C plus the online-screen
/// bookkeeping (how many panel-level mismatches were observed, and how many
/// tile replays ran to repair them).
struct FusedProduct {
  linalg::Matrix c_fc;
  std::size_t panel_detections = 0;
  std::size_t panel_recomputes = 0;
};

/// C_fc = A_cc * B_rc without materialising A_cc / B_rc: data rows/columns
/// stream from a and b, checksum rows/columns from the light-encode sums.
/// Bit-identical to blocked_matmul over the materialised encoded operands.
/// Requires a.rows() and b.cols() to be multiples of codec.bs() and the sums
/// buffers to have the shapes documented on LightEncoded.
FusedProduct fused_encode_matmul(gpusim::Launcher& launcher,
                                 const linalg::Matrix& a,
                                 const linalg::Matrix& b,
                                 const linalg::Matrix& a_sums,
                                 const linalg::Matrix& b_sums,
                                 const PartitionedCodec& codec,
                                 const FusedGemmConfig& config);

/// Materialise the classic encoded operands from a light encode — the rare
/// path (correction / block recompute / full recompute all operate on the
/// encoded operands). Pure layout copies: bit-identical to the data matrices
/// encode_columns / encode_rows produce.
linalg::Matrix materialize_columns(const linalg::Matrix& a,
                                   const linalg::Matrix& a_sums,
                                   const PartitionedCodec& codec);

linalg::Matrix materialize_rows(const linalg::Matrix& b,
                                const linalg::Matrix& b_sums,
                                const PartitionedCodec& codec);

}  // namespace aabft::abft
