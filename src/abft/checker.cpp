#include "core/sync.hpp"
#include "abft/checker.hpp"

#include <cmath>
#include <numeric>

#include "abft/upper_bound.hpp"
#include "core/require.hpp"

namespace aabft::abft {

using gpusim::BlockCtx;
using gpusim::Dim3;
using linalg::Matrix;

std::string to_string(CheckKind kind) {
  return kind == CheckKind::kColumn ? "column" : "row";
}

double Mismatch::difference() const noexcept {
  return std::fabs(reference - stored);
}

std::size_t CheckReport::count(CheckKind kind) const noexcept {
  std::size_t n = 0;
  for (const auto& m : mismatches)
    if (m.kind == kind) ++n;
  return n;
}

double EpsilonTrace::average() const {
  const std::size_t n = column_epsilons.size() + row_epsilons.size();
  AABFT_REQUIRE(n > 0, "EpsilonTrace::average on an empty trace");
  const double sum =
      std::accumulate(column_epsilons.begin(), column_epsilons.end(), 0.0) +
      std::accumulate(row_epsilons.begin(), row_epsilons.end(), 0.0);
  return sum / static_cast<double>(n);
}

CheckReport check_product(gpusim::Launcher& launcher, const Matrix& c_fc,
                          const PartitionedCodec& codec,
                          const PMaxTable& a_pmax, const PMaxTable& b_pmax,
                          std::size_t inner_dim, const BoundParams& params,
                          EpsilonTrace* trace) {
  const std::size_t bs = codec.bs();
  AABFT_REQUIRE(c_fc.rows() % (bs + 1) == 0 && c_fc.cols() % (bs + 1) == 0,
                "C_fc dimensions must be multiples of BS+1");
  AABFT_REQUIRE(a_pmax.size() == c_fc.rows(),
                "a_pmax must have one list per row of C_fc");
  AABFT_REQUIRE(b_pmax.size() == c_fc.cols(),
                "b_pmax must have one list per column of C_fc");
  const std::size_t grid_rows = c_fc.rows() / (bs + 1);
  const std::size_t grid_cols = c_fc.cols() / (bs + 1);

  // Per-block-row maxima over the *data* rows of A (and data columns of B),
  // used by the compositional policy to bound the reference checksum's own
  // rounding. Cheap host pre-pass over already-reduced p-max lists.
  std::vector<double> a_block_max(grid_rows, 0.0);
  for (std::size_t br = 0; br < grid_rows; ++br)
    for (std::size_t i = 0; i < bs; ++i)
      a_block_max[br] = std::max(
          a_block_max[br], a_pmax[br * (bs + 1) + i].max_value());
  std::vector<double> b_block_max(grid_cols, 0.0);
  for (std::size_t bc = 0; bc < grid_cols; ++bc)
    for (std::size_t j = 0; j < bs; ++j)
      b_block_max[bc] = std::max(
          b_block_max[bc], b_pmax[bc * (bs + 1) + j].max_value());

  CheckReport report;
  core::Mutex report_mutex{core::LockRank::kKernelReduction,
                           "kernel.check_merge"};

  launcher.launch("check", Dim3{grid_cols, grid_rows, 1}, [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t gbr = blk.block.y;
    const std::size_t gbc = blk.block.x;
    const std::size_t row0 = gbr * (bs + 1);
    const std::size_t col0 = gbc * (bs + 1);

    math.load_doubles((bs + 1) * (bs + 1));

    std::vector<Mismatch> local_mismatches;
    std::vector<double> local_col_eps;
    std::vector<double> local_row_eps;

    const PMaxList& a_cs = a_pmax[codec.checksum_index(gbr)];
    const PMaxList& b_cs = b_pmax[codec.checksum_index(gbc)];

    // ---- column checksums: every column of the block, incl. the corner ----
    for (std::size_t j = 0; j <= bs; ++j) {
      const std::size_t gc = col0 + j;
      double ref = 0.0;
      for (std::size_t i = 0; i < bs; ++i)
        ref = math.add(ref, c_fc(row0 + i, gc));
      const double stored = c_fc(row0 + bs, gc);

      const double y_cs = determine_upper_bound(a_cs, b_pmax[gc]);
      // aabft-lint: allow (bound estimate, bulk-counted below)
      const double y_data = a_block_max[gbr] * b_pmax[gc].max_value();
      math.count_compares(2 * a_cs.size() * b_pmax[gc].size());
      const double eps = checksum_epsilon(inner_dim, bs, y_cs, y_data, params);
      math.count_muls(6);
      math.count_adds(6);

      const double diff = math.abs(math.sub(ref, stored));
      math.count_compares(1);
      if (!(diff <= eps))  // NaN-aware: Inf/NaN corruption must trip the check
        local_mismatches.push_back(
            {CheckKind::kColumn, gbr, gbc, j, ref, stored, eps});
      if (trace != nullptr) local_col_eps.push_back(eps);
    }

    // ---- row checksums: every row of the block, incl. the checksum row ----
    for (std::size_t i = 0; i <= bs; ++i) {
      const std::size_t gr = row0 + i;
      double ref = 0.0;
      for (std::size_t j = 0; j < bs; ++j)
        ref = math.add(ref, c_fc(gr, col0 + j));
      const double stored = c_fc(gr, col0 + bs);

      const double y_cs = determine_upper_bound(a_pmax[gr], b_cs);
      // aabft-lint: allow (bound estimate, bulk-counted below)
      const double y_data = a_pmax[gr].max_value() * b_block_max[gbc];
      math.count_compares(2 * a_pmax[gr].size() * b_cs.size());
      const double eps = checksum_epsilon(inner_dim, bs, y_cs, y_data, params);
      math.count_muls(6);
      math.count_adds(6);

      const double diff = math.abs(math.sub(ref, stored));
      math.count_compares(1);
      if (!(diff <= eps))  // NaN-aware: Inf/NaN corruption must trip the check
        local_mismatches.push_back(
            {CheckKind::kRow, gbr, gbc, i, ref, stored, eps});
      if (trace != nullptr) local_row_eps.push_back(eps);
    }

    if (!local_mismatches.empty() || trace != nullptr) {
      const core::MutexLock lock(report_mutex);
      for (auto& m : local_mismatches) report.mismatches.push_back(m);
      if (trace != nullptr) {
        trace->column_epsilons.insert(trace->column_epsilons.end(),
                                      local_col_eps.begin(), local_col_eps.end());
        trace->row_epsilons.insert(trace->row_epsilons.end(),
                                   local_row_eps.begin(), local_row_eps.end());
      }
    }
  });

  return report;
}

}  // namespace aabft::abft
