#include "abft/pmax_scan.hpp"

#include <cmath>
#include <vector>

#include "core/require.hpp"

namespace aabft::abft {

using gpusim::BlockCtx;
using gpusim::Dim3;
using linalg::Matrix;

namespace {

PMaxTable reduce_chunks(gpusim::Launcher& launcher, const char* name,
                        const std::vector<PMaxList>& candidates,
                        std::size_t vectors, std::size_t chunks,
                        std::size_t p) {
  PMaxTable table(vectors, PMaxList(p));
  launcher.launch(name, Dim3{vectors, 1, 1}, [&](BlockCtx& blk) {
    const std::size_t v = blk.block.x;
    PMaxList merged(p);
    std::size_t comparisons = 0;
    for (std::size_t c = 0; c < chunks; ++c)
      comparisons += merged.merge(candidates[v * chunks + c]);
    blk.math.count_compares(comparisons);
    blk.math.load_doubles(chunks * p * 2);
    blk.math.store_doubles(p * 2);
    table[v] = std::move(merged);
  });
  return table;
}

}  // namespace

PMaxTable collect_row_pmax(gpusim::Launcher& launcher, const Matrix& m,
                           std::size_t p, std::size_t chunk) {
  AABFT_REQUIRE(p >= 1 && chunk >= 1, "p and chunk must be positive");
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  const std::size_t chunks = (cols + chunk - 1) / chunk;
  std::vector<PMaxList> candidates(rows * chunks, PMaxList(p));

  launcher.launch("pmax_rows", Dim3{chunks, rows, 1}, [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t r = blk.block.y;
    const std::size_t col0 = blk.block.x * chunk;
    const std::size_t width = std::min(chunk, cols - col0);
    math.load_doubles(width);
    PMaxList& list = candidates[r * chunks + blk.block.x];
    std::size_t comparisons = 0;
    for (std::size_t c = 0; c < width; ++c)
      comparisons += list.offer(std::fabs(m(r, col0 + c)), col0 + c);
    math.count_compares(comparisons);
    math.store_doubles(p * 2);
  });

  return reduce_chunks(launcher, "reduce_pmax_rows", candidates, rows, chunks, p);
}

PMaxTable collect_col_pmax(gpusim::Launcher& launcher, const Matrix& m,
                           std::size_t p, std::size_t chunk) {
  AABFT_REQUIRE(p >= 1 && chunk >= 1, "p and chunk must be positive");
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  const std::size_t chunks = (rows + chunk - 1) / chunk;
  std::vector<PMaxList> candidates(cols * chunks, PMaxList(p));

  launcher.launch("pmax_cols", Dim3{cols, chunks, 1}, [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t c = blk.block.x;
    const std::size_t row0 = blk.block.y * chunk;
    const std::size_t height = std::min(chunk, rows - row0);
    math.load_doubles(height);
    PMaxList& list = candidates[c * chunks + blk.block.y];
    std::size_t comparisons = 0;
    for (std::size_t r = 0; r < height; ++r)
      comparisons += list.offer(std::fabs(m(row0 + r, c)), row0 + r);
    math.count_compares(comparisons);
    math.store_doubles(p * 2);
  });

  return reduce_chunks(launcher, "reduce_pmax_cols", candidates, cols, chunks, p);
}

}  // namespace aabft::abft
