// Zero-padding to checksum-block multiples.
//
// The partitioned encoding needs A's row count and B's column count to be
// multiples of BS; the paper pads its matrices ("Input: padded matrix A",
// Algorithm 1). These helpers pad with zeros — which is checksum-neutral:
// zero rows/columns contribute zero to every checksum and product — and
// strip the padding from the result.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace aabft::abft {

/// Smallest multiple of `block` that is >= dim.
[[nodiscard]] constexpr std::size_t padded_dim(std::size_t dim,
                                               std::size_t block) noexcept {
  return (dim + block - 1) / block * block;
}

/// Copy of `m` zero-padded on the bottom/right to the given extents.
/// Requires rows >= m.rows() and cols >= m.cols().
[[nodiscard]] linalg::Matrix pad_to(const linalg::Matrix& m, std::size_t rows,
                                    std::size_t cols);

/// Top-left rows x cols corner of `m` (inverse of pad_to).
[[nodiscard]] linalg::Matrix unpad_to(const linalg::Matrix& m, std::size_t rows,
                                      std::size_t cols);

}  // namespace aabft::abft
