#include "abft/aabft.hpp"

#include <algorithm>
#include <exception>
#include <string>

#include "core/require.hpp"

namespace aabft::abft {

using linalg::Matrix;

AabftMultiplier::AabftMultiplier(gpusim::Launcher& launcher, AabftConfig config)
    : launcher_(launcher), config_(config), codec_(config.bs) {
  AABFT_REQUIRE(config_.valid(),
                "invalid A-ABFT configuration (check bs, p, gemm blocking and "
                "that the FMA flags of bounds and gemm agree)");
  // The bound model's t must match the pipeline's arithmetic precision.
  const int expected_t =
      launcher.precision() == gpusim::Precision::kSingle ? 23 : 52;
  AABFT_REQUIRE(config_.bounds.t == expected_t,
                "bounds.t must match the launcher's arithmetic precision "
                "(52 for double, 23 for single)");
}

std::optional<Error> AabftMultiplier::validate(const Matrix& a,
                                               const Matrix& b) const {
  if (a.cols() != b.rows())
    return shape_error("inner dimensions must agree: A is " +
                       std::to_string(a.rows()) + "x" +
                       std::to_string(a.cols()) + ", B is " +
                       std::to_string(b.rows()) + "x" +
                       std::to_string(b.cols()));
  if (!codec_.divides(a.rows()))
    return shape_error("rows of A (" + std::to_string(a.rows()) +
                       ") must be a multiple of the checksum block size " +
                       std::to_string(config_.bs));
  if (!codec_.divides(b.cols()))
    return shape_error("columns of B (" + std::to_string(b.cols()) +
                       ") must be a multiple of the checksum block size " +
                       std::to_string(config_.bs));
  return std::nullopt;
}

Result<AabftResult> AabftMultiplier::multiply(const Matrix& a,
                                              const Matrix& b) {
  if (auto err = validate(a, b)) return *err;
  return run(a, b, nullptr);
}

Result<AabftResult> AabftMultiplier::multiply_preencoded(const PreencodedA& pre,
                                                         const Matrix& b) {
  AABFT_REQUIRE(pre.a != nullptr && pre.light != nullptr,
                "PreencodedA must reference the operand and its light encode");
  if (auto err = validate(*pre.a, b)) return *err;
  return run(*pre.a, b, nullptr, &pre);
}

std::vector<Result<AabftResult>> AabftMultiplier::multiply_batch_preencoded(
    std::span<const PreencodedProblem> problems, std::size_t streams) {
  std::vector<Result<AabftResult>> results;
  results.reserve(problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i)
    results.emplace_back(
        Error{ErrorCode::kExecutionFailed, "batch entry did not execute"});
  if (problems.empty()) return results;

  const std::size_t lanes_wanted =
      streams != 0 ? streams : std::max<std::size_t>(1, launcher_.workers());
  const std::size_t num_lanes = std::min(problems.size(), lanes_wanted);

  std::vector<gpusim::Stream> lanes;
  lanes.reserve(num_lanes);
  for (std::size_t s = 0; s < num_lanes; ++s)
    lanes.push_back(launcher_.create_stream());

  // Same lane discipline as multiply_batch: one host task per problem, the
  // product of one overlapping the (B-side) encode of another. The shared
  // PreencodedA is read-only, so problems reusing one cached A are safe to
  // overlap.
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const PreencodedProblem& prob = problems[i];
    AABFT_REQUIRE(prob.a != nullptr && prob.a->a != nullptr &&
                      prob.a->light != nullptr && prob.b != nullptr,
                  "PreencodedProblem must reference a PreencodedA and B");
    if (auto err = validate(*prob.a->a, *prob.b)) {
      results[i] = *err;
      continue;
    }
    launcher_.launch_host_async(
        lanes[i % num_lanes], "aabft_batch_pre", [this, prob, &results, i] {
          try {
            results[i] = run(*prob.a->a, *prob.b, nullptr, prob.a);
          } catch (const std::exception& e) {
            results[i] = Error{ErrorCode::kExecutionFailed, e.what()};
          }
        });
  }
  for (auto& lane : lanes) lane.synchronize();
  return results;
}

std::vector<Result<AabftResult>> AabftMultiplier::multiply_batch(
    std::span<const std::pair<Matrix, Matrix>> problems, std::size_t streams) {
  std::vector<Result<AabftResult>> results;
  results.reserve(problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i)
    results.emplace_back(
        Error{ErrorCode::kExecutionFailed, "batch entry did not execute"});
  if (problems.empty()) return results;

  const std::size_t lanes_wanted =
      streams != 0 ? streams : std::max<std::size_t>(1, launcher_.workers());
  const std::size_t num_lanes = std::min(problems.size(), lanes_wanted);

  std::vector<gpusim::Stream> lanes;
  lanes.reserve(num_lanes);
  for (std::size_t s = 0; s < num_lanes; ++s)
    lanes.push_back(launcher_.create_stream());

  // Each problem's whole pipeline runs as one host task on its lane: within
  // a lane problems execute in order, across lanes the encode of one problem
  // overlaps the product/check of another. The nested launch() calls inside
  // run() are drained by the worker executing the host task (caller-help),
  // so this cannot deadlock even with a single worker.
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const auto& [a, b] = problems[i];
    if (auto err = validate(a, b)) {
      results[i] = *err;
      continue;
    }
    launcher_.launch_host_async(
        lanes[i % num_lanes], "aabft_batch", [this, &a, &b, &results, i] {
          try {
            results[i] = run(a, b, nullptr);
          } catch (const std::exception& e) {
            results[i] = Error{ErrorCode::kExecutionFailed, e.what()};
          }
        });
  }
  for (auto& lane : lanes) lane.synchronize();
  return results;
}

AabftResult AabftMultiplier::multiply_traced(const Matrix& a, const Matrix& b,
                                             EpsilonTrace& trace) {
  return run(a, b, &trace);
}

AabftResult AabftMultiplier::multiply_padded(const Matrix& a, const Matrix& b) {
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const std::size_t padded_m = padded_dim(a.rows(), config_.bs);
  const std::size_t padded_q = padded_dim(b.cols(), config_.bs);
  const Matrix a_padded = pad_to(a, padded_m, a.cols());
  const Matrix b_padded = pad_to(b, b.rows(), padded_q);
  AabftResult result = run(a_padded, b_padded, nullptr);
  result.c = unpad_to(result.c, a.rows(), b.cols());
  return result;
}

void AabftMultiplier::maybe_verify_preencoded(const Matrix& a,
                                              const PreencodedA& pre) {
  const std::size_t every = config_.cache_verify_every;
  if (every == 0) return;
  const std::uint64_t n =
      preencoded_served_.fetch_add(1, std::memory_order_relaxed);
  if (n % every != 0) return;

  // Fresh light encode of the operand the caller actually handed us; the
  // cached side-buffer must match it bit for bit (the sums feed both the
  // fused product and the materialised repair operands), and the p-max
  // *values* must match (tie index choices are encoder-specific and do not
  // enter the bounds).
  const LightEncoded fresh = encode_columns_light(launcher_, a, codec_,
                                                  config_.p);
  AABFT_REQUIRE(fresh.sums == pre.light->sums,
                "operand-cache consistency check failed: cached checksum "
                "side-buffer is not bit-identical to a fresh encode (stale "
                "or corrupted cache entry)");
  AABFT_REQUIRE(fresh.pmax.size() == pre.light->pmax.size(),
                "operand-cache consistency check failed: p-max table extent "
                "mismatch");
  for (std::size_t v = 0; v < fresh.pmax.size(); ++v) {
    const PMaxList& want = fresh.pmax[v];
    const PMaxList& got = pre.light->pmax[v];
    AABFT_REQUIRE(want.size() == got.size(),
                  "operand-cache consistency check failed: p-max list length "
                  "mismatch");
    for (std::size_t i = 0; i < want.size(); ++i)
      AABFT_REQUIRE(want[i].value == got[i].value,
                    "operand-cache consistency check failed: cached p-max "
                    "value differs from a fresh encode");
  }
}

AabftResult AabftMultiplier::run(const Matrix& a, const Matrix& b,
                                 EpsilonTrace* trace,
                                 const PreencodedA* pre_a) {
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  AABFT_REQUIRE(codec_.divides(a.rows()),
                "rows of A must be a multiple of the checksum block size");
  AABFT_REQUIRE(codec_.divides(b.cols()),
                "columns of B must be a multiple of the checksum block size");
  if (pre_a != nullptr) maybe_verify_preencoded(a, *pre_a);
  if (config_.fused_gemm) return run_fused(a, b, trace, pre_a);

  // Step 1: encode + blockwise maxima (Algorithm 1), step 3's global
  // reduction is launched inside encode_* right after. A cache hit replaces
  // A's encode with the cached artifacts: the pre-materialised A_cc when the
  // cache stored one, else a pure layout copy from the cached sums — either
  // way bit-identical to encode_columns, so the product and every repair
  // rung below are unchanged.
  std::optional<EncodedMatrix> a_own;
  std::optional<Matrix> a_materialized;
  const Matrix* a_enc_data = nullptr;
  const PMaxTable* a_pmax = nullptr;
  if (pre_a != nullptr) {
    a_pmax = &pre_a->light->pmax;
    if (pre_a->encoded != nullptr) {
      a_enc_data = pre_a->encoded;
    } else {
      a_materialized = materialize_columns(a, pre_a->light->sums, codec_);
      a_enc_data = &*a_materialized;
    }
  } else {
    a_own = encode_columns(launcher_, a, codec_, config_.p);
    a_enc_data = &a_own->data;
    a_pmax = &a_own->pmax;
  }
  EncodedMatrix b_rc = encode_rows(launcher_, b, codec_, config_.p);

  // Step 2: the block-based product over the encoded operands (Algorithm 3).
  Matrix c_fc = linalg::blocked_matmul(launcher_, *a_enc_data, b_rc.data,
                                       config_.gemm);

  const auto encoded_a = [&]() -> const Matrix& { return *a_enc_data; };
  const auto encoded_b = [&]() -> const Matrix& { return b_rc.data; };
  return settle(std::move(c_fc), *a_pmax, b_rc.pmax, a.cols(), trace,
                encoded_a, encoded_b);
}

AabftResult AabftMultiplier::run_fused(const Matrix& a, const Matrix& b,
                                       EpsilonTrace* trace,
                                       const PreencodedA* pre_a) {
  // Step 1, light form: compact checksum side-buffers + p-max tables, no
  // encoded-matrix materialisation (fused_gemm.hpp). A cache hit skips A's
  // light encode entirely — the cached sums and p-max table are exactly what
  // encode_columns_light would produce.
  std::optional<LightEncoded> a_own;
  const LightEncoded* a_light = nullptr;
  if (pre_a != nullptr) {
    a_light = pre_a->light;
  } else {
    a_own = encode_columns_light(launcher_, a, codec_, config_.p);
    a_light = &*a_own;
  }
  const LightEncoded b_light = encode_rows_light(launcher_, b, codec_,
                                                 config_.p);

  // Step 2, fused: the product stages the encoding virtually and screens its
  // own column checksums at panel boundaries — the recovery ladder's rung 0.
  FusedGemmConfig fused = config_.fused;
  fused.use_fma = config_.gemm.use_fma;
  FusedProduct product = fused_encode_matmul(launcher_, a, b, a_light->sums,
                                             b_light.sums, codec_, fused);

  // The repair rungs (correction re-check aside) operate on the encoded
  // operands; materialise them only if one actually engages (a cached A_cc,
  // when present, short-circuits even that copy).
  std::optional<Matrix> a_enc;
  std::optional<Matrix> b_enc;
  const auto encoded_a = [&]() -> const Matrix& {
    if (pre_a != nullptr && pre_a->encoded != nullptr) return *pre_a->encoded;
    if (!a_enc) a_enc = materialize_columns(a, a_light->sums, codec_);
    return *a_enc;
  };
  const auto encoded_b = [&]() -> const Matrix& {
    if (!b_enc) b_enc = materialize_rows(b, b_light.sums, codec_);
    return *b_enc;
  };
  AabftResult result = settle(std::move(product.c_fc), a_light->pmax,
                              b_light.pmax, a.cols(), trace, encoded_a,
                              encoded_b);
  result.fused = true;
  result.panel_detections = product.panel_detections;
  result.panel_recomputes = product.panel_recomputes;
  return result;
}

AabftResult AabftMultiplier::settle(
    Matrix c_fc, const PMaxTable& a_pmax, const PMaxTable& b_pmax,
    std::size_t k, EpsilonTrace* trace,
    const std::function<const Matrix&()>& encoded_a,
    const std::function<const Matrix&()>& encoded_b) {
  // Step 4: bounds determination + reference checksums + comparison
  // (Algorithm 2).
  CheckReport report = check_product(launcher_, c_fc, codec_, a_pmax, b_pmax,
                                     k, config_.bounds, trace);

  AabftResult result;
  result.report = report;

  // Step 5: localisation and correction.
  if (!report.clean() && config_.correct_errors) {
    CorrectionOutcome outcome = locate_and_correct(c_fc, report, codec_);
    result.corrections = std::move(outcome.corrections);
    result.uncorrectable = outcome.uncorrectable;
    if (!result.corrections.empty() && !result.uncorrectable) {
      // Verify the patch: the corrected matrix must pass a clean re-check.
      const CheckReport recheck = check_product(
          launcher_, c_fc, codec_, a_pmax, b_pmax, k, config_.bounds, nullptr);
      result.recheck_clean = recheck.clean();
    } else {
      result.recheck_clean = false;
    }

    // Per-block recompute rung (opt-in): re-derive only the still-flagged
    // checksum blocks from the encoded operands — bit-exact, unlike the
    // checksum-rebuilt patches above — before resorting to a full re-run.
    std::size_t block_rounds = config_.max_block_recomputes;
    if (block_rounds > 0 && (result.uncorrectable || !result.recheck_clean)) {
      // The first report still describes c_fc when nothing was patched;
      // otherwise re-check to see what correction left behind.
      CheckReport current =
          result.corrections.empty()
              ? report
              : check_product(launcher_, c_fc, codec_, a_pmax, b_pmax, k,
                              config_.bounds, nullptr);
      while (!current.clean() && block_rounds-- > 0) {
        const auto blocks = flagged_blocks(current);
        recompute_blocks(launcher_, c_fc, encoded_a(), encoded_b(), blocks,
                         codec_, config_.gemm);
        result.block_recomputes += blocks.size();
        current = check_product(launcher_, c_fc, codec_, a_pmax, b_pmax, k,
                                config_.bounds, nullptr);
      }
      if (current.clean()) {
        result.uncorrectable = false;
        result.recheck_clean = true;
      }
    }

    // Recovery of last resort for transient faults: re-execute the product.
    // blocked_matmul over the materialised encoded operands is bit-identical
    // to a clean fused product (the accumulation order is blocking-
    // independent), so both pipelines share this rung.
    std::size_t attempts = config_.max_recompute_attempts;
    while ((result.uncorrectable || !result.recheck_clean) && attempts-- > 0) {
      c_fc = linalg::blocked_matmul(launcher_, encoded_a(), encoded_b(),
                                    config_.gemm);
      ++result.recomputations;
      const CheckReport recheck = check_product(
          launcher_, c_fc, codec_, a_pmax, b_pmax, k, config_.bounds, nullptr);
      if (recheck.clean()) {
        result.uncorrectable = false;
        result.recheck_clean = true;
      }
    }
  } else if (!report.clean()) {
    result.uncorrectable = true;  // detection-only mode
    result.recheck_clean = false;
  }

  result.c = codec_.strip(c_fc);
  result.c_fc = std::move(c_fc);
  return result;
}

}  // namespace aabft::abft
