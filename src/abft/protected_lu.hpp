// ABFT-protected LU factorisation — the paper's generality claim made
// concrete.
//
// The introduction notes that although A-ABFT is presented for matrix
// multiplication, "the approach itself is much more general and can be
// extended to other operations as well"; the original ABFT literature the
// paper builds on (Huang/Abraham [10]) already covered LU. This module
// implements the standard construction: a right-looking blocked LU with
// partial pivoting whose O(n^3) trailing updates — the part worth
// protecting — run through the A-ABFT protected multiplier (detection,
// localisation, correction, recompute fallback), while the O(n * panel^2)
// panel factorisations and triangular solves stay on the host. The trailing
// matrix's checksums are additionally *carried* across panel updates
// (abft::ChecksumCarry, blas3.hpp) and verified before each panel is
// consumed (the MAGMA CHECK_BEFORE pattern), so corruption between
// protected updates restarts the factorisation instead of leaking into the
// factors.
//
// Serving entry point: the ProtectedBlas3 operation API (OpKind::kLu via
// baselines::AabftScheme::execute) wraps this engine; the class itself
// remains the rich interface for code that needs LuResult's full detail.
#pragma once

#include <cstddef>
#include <vector>

#include "abft/aabft.hpp"
#include "abft/blas3.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

struct LuResult {
  /// Combined factors: unit-lower L below the diagonal, U on and above it.
  linalg::Matrix lu;
  /// Row permutation: factored row i of PA is original row perm[i].
  std::vector<std::size_t> perm;
  std::size_t protected_updates = 0;   ///< A-ABFT-protected GEMM updates run
  std::size_t faults_detected = 0;     ///< updates that flagged an error
  std::size_t panel_detections = 0;    ///< online k-panel screen mismatches
  std::size_t panel_recomputes = 0;    ///< fused-update tile panel replays
  bool fused_updates = false;          ///< updates ran the fused pipeline
  std::size_t corrections = 0;         ///< localised repairs applied
  std::size_t block_recomputes = 0;    ///< checksum blocks recomputed in place
  std::size_t recomputations = 0;      ///< transient-fault re-executions
  std::size_t carry_mismatches = 0;    ///< carried-checksum checks that failed
  std::size_t factor_restarts = 0;     ///< full refactor after a carry mismatch
  bool singular = false;               ///< a pivot column was exactly zero
  bool ok = true;                      ///< factorisation completed cleanly
};

struct ProtectedLuConfig {
  std::size_t panel = 32;   ///< blocking width of the factorisation
  AabftConfig aabft;        ///< protection of the trailing updates
};

class ProtectedLu {
 public:
  ProtectedLu(gpusim::Launcher& launcher, ProtectedLuConfig config);

  /// Factor a square matrix: P A = L U with partial pivoting. One carry
  /// mismatch restarts the factorisation from the pristine input; a second
  /// gives up (ok = false).
  [[nodiscard]] LuResult factor(const linalg::Matrix& a);

  /// Solve A x = b given a factorisation (forward/back substitution).
  [[nodiscard]] static std::vector<double> solve(const LuResult& lu,
                                                 std::vector<double> b);

  /// max_ij |(P A - L U)_ij| — reconstruction residual (test/diagnostic).
  [[nodiscard]] static double residual(const linalg::Matrix& a,
                                       const LuResult& lu);

 private:
  [[nodiscard]] LuResult factor_once(const linalg::Matrix& a);

  gpusim::Launcher& launcher_;
  ProtectedLuConfig config_;
};

}  // namespace aabft::abft
