// BLAS-style convenience front end: the dgemm signature, protected.
//
//   C <- alpha * A * B + beta * C
//
// The O(n^3) product A * B runs through the A-ABFT protected multiplier;
// the O(n^2) scale-and-accumulate epilogue is performed afterwards. This is
// the call signature numerical codes already use, so dropping A-ABFT into an
// existing application is a one-line change.
#pragma once

#include "abft/aabft.hpp"
#include "core/result.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

struct GemmCallResult {
  std::size_t faults_detected = 0;
  std::size_t corrections = 0;
  std::size_t recomputations = 0;
  bool ok = true;  ///< the protected product ended recheck-clean
};

/// C <- alpha * A * B + beta * C, with the product protected by A-ABFT.
/// Shapes: A is m x k, B is k x n, C is m x n (C must be pre-sized).
/// Dimensions may be arbitrary (padding is applied internally); shape
/// mismatches between the operands are returned as errors, not thrown
/// (DESIGN.md §4.7), and leave C untouched.
[[nodiscard]] Result<GemmCallResult> protected_gemm(
    gpusim::Launcher& launcher, double alpha, const linalg::Matrix& a,
    const linalg::Matrix& b, double beta, linalg::Matrix& c,
    const AabftConfig& config = {});

}  // namespace aabft::abft
