#include "abft/blas3.hpp"

#include <algorithm>
#include <cmath>

#include "core/require.hpp"

namespace aabft::abft {

using linalg::Matrix;

// ---- ChecksumCarry ---------------------------------------------------------

namespace {

/// Relative tolerance of the carry comparison. The carried value accumulates
/// one verified checksum-row entry per trailing update, each within the
/// ABFT epsilon bound of the true block sum (~k * u relative), so the honest
/// drift across a whole factorisation is orders of magnitude below this;
/// corruption of the trailing matrix between updates (the event the carry
/// exists to catch) changes sums by far more.
constexpr double kCarryRelTol = 1e-8;

}  // namespace

ChecksumCarry::ChecksumCarry(std::size_t n, std::size_t bs, std::size_t panel)
    : n_(n), bs_(bs) {
  enabled_ = n > 0 && bs >= 2 && panel >= 2 && panel % bs == 0;
  if (!enabled_) return;
  nblocks_ = (n + bs - 1) / bs;
  sums_.assign(nblocks_ * n, 0.0);
  mags_.assign(nblocks_ * n, 0.0);
}

void ChecksumCarry::init(const Matrix& m) {
  if (!enabled_) return;
  for (std::size_t gb = 0; gb < nblocks_; ++gb) {
    const std::size_t row_lo = gb * bs_;
    const std::size_t row_hi = std::min(n_, row_lo + bs_);
    for (std::size_t j = 0; j < n_; ++j) {
      double sum = 0.0;
      double mag = 0.0;
      for (std::size_t i = row_lo; i < row_hi; ++i) {
        sum += m(i, j);
        mag += std::fabs(m(i, j));
      }
      sums_[gb * n_ + j] = sum;
      mags_[gb * n_ + j] = mag;
    }
  }
}

void ChecksumCarry::note_row_swap(const Matrix& m, std::size_t r1,
                                  std::size_t r2, std::size_t col_begin) {
  if (!enabled_) return;
  const std::size_t b1 = r1 / bs_;
  const std::size_t b2 = r2 / bs_;
  if (b1 == b2) return;  // a swap inside one block leaves its sums unchanged
  for (std::size_t j = col_begin; j < n_; ++j) {
    const double v1 = m(r1, j);
    const double v2 = m(r2, j);
    sums_[b1 * n_ + j] += v2 - v1;
    sums_[b2 * n_ + j] += v1 - v2;
    const double mag = std::fabs(v1) + std::fabs(v2);
    mags_[b1 * n_ + j] += mag;
    mags_[b2 * n_ + j] += mag;
  }
}

void ChecksumCarry::apply_update(const Matrix& c_fc,
                                 const PartitionedCodec& codec,
                                 std::size_t k_end, std::size_t n2) {
  if (!enabled_) return;
  AABFT_REQUIRE(k_end % bs_ == 0,
                "carry requires panel boundaries aligned to checksum blocks");
  const std::size_t local_blocks = c_fc.rows() / (bs_ + 1);
  const std::size_t base = k_end / bs_;
  for (std::size_t lb = 0; lb < local_blocks; ++lb) {
    const std::size_t gb = base + lb;
    if (gb >= nblocks_) break;  // pure padding rows beyond the matrix
    const std::size_t chk_row = codec.checksum_index(lb);
    for (std::size_t j = 0; j < n2; ++j) {
      const double v = c_fc(chk_row, codec.enc_index(j));
      const std::size_t idx = gb * n_ + (k_end + j);
      sums_[idx] -= v;
      mags_[idx] += std::fabs(v);
    }
  }
}

std::size_t ChecksumCarry::verify_panel(const Matrix& m, std::size_t k0,
                                        std::size_t k_end) const {
  if (!enabled_) return 0;
  std::size_t mismatches = 0;
  for (std::size_t gb = k0 / bs_; gb < nblocks_; ++gb) {
    const std::size_t row_lo = gb * bs_;
    const std::size_t row_hi = std::min(n_, row_lo + bs_);
    for (std::size_t j = k0; j < k_end; ++j) {
      double fresh = 0.0;
      for (std::size_t i = row_lo; i < row_hi; ++i) fresh += m(i, j);
      const std::size_t idx = gb * n_ + j;
      const double tol = kCarryRelTol * (1.0 + mags_[idx]);
      if (std::fabs(fresh - sums_[idx]) > tol) ++mismatches;
    }
  }
  return mismatches;
}

// ---- ProtectedCholesky -----------------------------------------------------

ProtectedCholesky::ProtectedCholesky(gpusim::Launcher& launcher,
                                     ProtectedCholConfig config)
    : launcher_(launcher), config_(config) {
  AABFT_REQUIRE(config_.panel >= 2, "panel width must be at least 2");
  AABFT_REQUIRE(config_.aabft.valid(), "invalid A-ABFT configuration");
}

CholResult ProtectedCholesky::factor(const Matrix& a) {
  AABFT_REQUIRE(a.rows() == a.cols(),
                "Cholesky factorisation needs a square matrix");
  CholResult first = factor_once(a);
  if (first.carry_mismatches == 0) return first;
  // The trailing matrix was corrupted between protected updates; the factors
  // derived from it are not trustworthy. Restart once from the pristine
  // input (the one panel-level recompute of the carry ladder).
  CholResult retry = factor_once(a);
  retry.factor_restarts = first.factor_restarts + 1;
  retry.protected_updates += first.protected_updates;
  retry.faults_detected += first.faults_detected;
  retry.panel_detections += first.panel_detections;
  retry.panel_recomputes += first.panel_recomputes;
  retry.fused_updates = retry.fused_updates || first.fused_updates;
  retry.corrections += first.corrections;
  retry.block_recomputes += first.block_recomputes;
  retry.recomputations += first.recomputations;
  retry.carry_mismatches += first.carry_mismatches;
  return retry;
}

CholResult ProtectedCholesky::factor_once(const Matrix& a) {
  const std::size_t n = a.rows();
  const std::size_t panel = config_.panel;

  CholResult result;
  result.l = a;
  Matrix& m = result.l;

  AabftMultiplier mult(launcher_, config_.aabft);
  ChecksumCarry carry(n, config_.aabft.bs, panel);
  carry.init(m);

  for (std::size_t k0 = 0; k0 < n; k0 += panel) {
    const std::size_t kb = std::min(panel, n - k0);
    const std::size_t k_end = k0 + kb;

    // CHECK_BEFORE: the panel's columns must still agree with the carried
    // sums before they are consumed.
    if (const std::size_t mism = carry.verify_panel(m, k0, k_end)) {
      result.carry_mismatches += mism;
      result.ok = false;
      return result;
    }

    // ---- diagonal block: host Cholesky of A11 (O(panel^3)) ----
    for (std::size_t j = k0; j < k_end; ++j) {
      double d = m(j, j);
      for (std::size_t t = k0; t < j; ++t) d -= m(j, t) * m(j, t);
      if (d <= 0.0) {
        result.not_positive_definite = true;
        result.ok = false;
        return result;
      }
      const double ljj = std::sqrt(d);
      m(j, j) = ljj;
      for (std::size_t i = j + 1; i < k_end; ++i) {
        double s = m(i, j);
        for (std::size_t t = k0; t < j; ++t) s -= m(i, t) * m(j, t);
        m(i, j) = s / ljj;
      }
    }

    if (k_end == n) break;

    // ---- L21 = A21 * L11^{-T} (host triangular solve, O(n * panel^2)) ----
    for (std::size_t i = k_end; i < n; ++i) {
      for (std::size_t j = k0; j < k_end; ++j) {
        double s = m(i, j);
        for (std::size_t t = k0; t < j; ++t) s -= m(i, t) * m(j, t);
        m(i, j) = s / m(j, j);
      }
    }

    // ---- trailing update A22 -= L21 * L21^T, protected SYRK (O(n^3)) ----
    const std::size_t m2 = n - k_end;
    Matrix l21(m2, kb);
    for (std::size_t i = 0; i < m2; ++i)
      for (std::size_t j = 0; j < kb; ++j) l21(i, j) = m(k_end + i, k0 + j);

    const AabftResult update = mult.multiply_padded(l21, l21.transposed());
    ++result.protected_updates;
    if (update.error_detected()) ++result.faults_detected;
    result.panel_detections += update.panel_detections;
    result.panel_recomputes += update.panel_recomputes;
    if (update.fused) result.fused_updates = true;
    result.corrections += update.corrections.size();
    result.block_recomputes += update.block_recomputes;
    result.recomputations += update.recomputations;
    if (update.uncorrectable || !update.recheck_clean) result.ok = false;

    for (std::size_t i = 0; i < m2; ++i)
      for (std::size_t j = 0; j < m2; ++j)
        m(k_end + i, k_end + j) -= update.c(i, j);

    // Carry the update's verified checksums into the running sums (the
    // full square update keeps the trailing matrix symmetric, so the sums
    // cover whole columns of the active region).
    carry.apply_update(update.c_fc, mult.codec(), k_end, m2);
  }

  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) m(i, j) = 0.0;
  return result;
}

double ProtectedCholesky::residual(const Matrix& a, const CholResult& chol) {
  const std::size_t n = a.rows();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      const std::size_t tmax = std::min(i, j) + 1;
      for (std::size_t t = 0; t < tmax; ++t) s += chol.l(i, t) * chol.l(j, t);
      worst = std::max(worst, std::fabs(a(i, j) - s));
    }
  }
  return worst;
}

// ---- unprotected references ------------------------------------------------

Matrix raw_syrk(gpusim::Launcher& launcher, const Matrix& a,
                const linalg::GemmConfig& gemm) {
  return linalg::blocked_matmul(launcher, a, a.transposed(), gemm);
}

RawFactorResult raw_cholesky(gpusim::Launcher& launcher, const Matrix& a,
                             const linalg::GemmConfig& gemm,
                             std::size_t panel) {
  AABFT_REQUIRE(a.rows() == a.cols(),
                "Cholesky factorisation needs a square matrix");
  AABFT_REQUIRE(panel >= 2, "panel width must be at least 2");
  const std::size_t n = a.rows();

  RawFactorResult result;
  result.f = a;
  Matrix& m = result.f;

  for (std::size_t k0 = 0; k0 < n; k0 += panel) {
    const std::size_t kb = std::min(panel, n - k0);
    const std::size_t k_end = k0 + kb;

    for (std::size_t j = k0; j < k_end; ++j) {
      double d = m(j, j);
      for (std::size_t t = k0; t < j; ++t) d -= m(j, t) * m(j, t);
      if (d <= 0.0) {
        result.ok = false;
        return result;
      }
      const double ljj = std::sqrt(d);
      m(j, j) = ljj;
      for (std::size_t i = j + 1; i < k_end; ++i) {
        double s = m(i, j);
        for (std::size_t t = k0; t < j; ++t) s -= m(i, t) * m(j, t);
        m(i, j) = s / ljj;
      }
    }

    if (k_end == n) break;

    for (std::size_t i = k_end; i < n; ++i) {
      for (std::size_t j = k0; j < k_end; ++j) {
        double s = m(i, j);
        for (std::size_t t = k0; t < j; ++t) s -= m(i, t) * m(j, t);
        m(i, j) = s / m(j, j);
      }
    }

    const std::size_t m2 = n - k_end;
    Matrix l21(m2, kb);
    for (std::size_t i = 0; i < m2; ++i)
      for (std::size_t j = 0; j < kb; ++j) l21(i, j) = m(k_end + i, k0 + j);
    const Matrix update =
        linalg::blocked_matmul(launcher, l21, l21.transposed(), gemm);
    for (std::size_t i = 0; i < m2; ++i)
      for (std::size_t j = 0; j < m2; ++j)
        m(k_end + i, k_end + j) -= update(i, j);
  }

  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) m(i, j) = 0.0;
  return result;
}

RawFactorResult raw_lu(gpusim::Launcher& launcher, const Matrix& a,
                       const linalg::GemmConfig& gemm, std::size_t panel) {
  AABFT_REQUIRE(a.rows() == a.cols(),
                "LU factorisation needs a square matrix");
  AABFT_REQUIRE(panel >= 2, "panel width must be at least 2");
  const std::size_t n = a.rows();

  RawFactorResult result;
  result.f = a;
  result.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.perm[i] = i;
  Matrix& m = result.f;

  for (std::size_t k0 = 0; k0 < n; k0 += panel) {
    const std::size_t kb = std::min(panel, n - k0);
    const std::size_t k_end = k0 + kb;

    for (std::size_t j = k0; j < k_end; ++j) {
      std::size_t piv = j;
      double best = std::fabs(m(j, j));
      for (std::size_t i = j + 1; i < n; ++i) {
        const double cand = std::fabs(m(i, j));
        if (cand > best) {
          best = cand;
          piv = i;
        }
      }
      if (best == 0.0) {
        result.ok = false;
        return result;
      }
      if (piv != j) {
        for (std::size_t c = 0; c < n; ++c) std::swap(m(j, c), m(piv, c));
        std::swap(result.perm[j], result.perm[piv]);
      }
      const double inv_pivot = 1.0 / m(j, j);
      for (std::size_t i = j + 1; i < n; ++i) {
        m(i, j) *= inv_pivot;
        const double lij = m(i, j);
        for (std::size_t c = j + 1; c < k_end; ++c) m(i, c) -= lij * m(j, c);
      }
    }

    if (k_end == n) break;

    for (std::size_t j2 = k_end; j2 < n; ++j2) {
      for (std::size_t i = k0; i < k_end; ++i) {
        double s = m(i, j2);
        for (std::size_t t = k0; t < i; ++t) s -= m(i, t) * m(t, j2);
        m(i, j2) = s;
      }
    }

    const std::size_t m2 = n - k_end;
    Matrix l21(m2, kb);
    for (std::size_t i = 0; i < m2; ++i)
      for (std::size_t j = 0; j < kb; ++j) l21(i, j) = m(k_end + i, k0 + j);
    Matrix u12(kb, m2);
    for (std::size_t i = 0; i < kb; ++i)
      for (std::size_t j = 0; j < m2; ++j) u12(i, j) = m(k0 + i, k_end + j);
    const Matrix update = linalg::blocked_matmul(launcher, l21, u12, gemm);
    for (std::size_t i = 0; i < m2; ++i)
      for (std::size_t j = 0; j < m2; ++j)
        m(k_end + i, k_end + j) -= update(i, j);
  }

  return result;
}

}  // namespace aabft::abft
