// Runtime error classification — paper Section VI-C.
//
// A-ABFT distinguishes three classes of value deviations in a result
// element:
//   1. inevitable rounding errors        — within the expected rounding noise
//   2. tolerable compute errors          — in the magnitude of the rounding
//                                          noise; insignificant for the result
//   3. intolerable critical compute errors — larger than omega * sigma of the
//                                          probabilistically determined
//                                          rounding error; must be detected.
//
// The classification baseline for the fault-injection experiments uses the
// probabilistic moments (EV, sigma) of the affected element's inner product.
#pragma once

#include <cmath>
#include <string>

#include "abft/bounds.hpp"
#include "core/require.hpp"

namespace aabft::abft {

enum class ErrorClass : std::uint8_t {
  kRoundingNoise,  ///< |error| within one sigma of the rounding model
  kTolerable,      ///< between sigma and omega*sigma — same magnitude as noise
  kCritical,       ///< beyond omega*sigma — must be detected and corrected
};

[[nodiscard]] inline std::string to_string(ErrorClass c) {
  switch (c) {
    case ErrorClass::kRoundingNoise: return "rounding-noise";
    case ErrorClass::kTolerable: return "tolerable";
    case ErrorClass::kCritical: return "critical";
  }
  return "?";
}

/// Classify an absolute value deviation of one result element against the
/// rounding statistics of its inner product.
[[nodiscard]] inline ErrorClass classify_error(double abs_error,
                                               const RoundingStats& stats,
                                               double omega) {
  AABFT_REQUIRE(abs_error >= 0.0, "classify_error expects |error|");
  AABFT_REQUIRE(omega >= 1.0, "omega must be at least 1");
  const double noise = std::fabs(stats.mean) + stats.sigma;
  if (abs_error <= noise) return ErrorClass::kRoundingNoise;
  if (abs_error <= std::fabs(stats.mean) + omega * stats.sigma)
    return ErrorClass::kTolerable;
  return ErrorClass::kCritical;
}

}  // namespace aabft::abft
