#include "abft/blas.hpp"

#include <string>

namespace aabft::abft {

using linalg::Matrix;

Result<GemmCallResult> protected_gemm(gpusim::Launcher& launcher, double alpha,
                                      const Matrix& a, const Matrix& b,
                                      double beta, Matrix& c,
                                      const AabftConfig& config) {
  if (a.cols() != b.rows())
    return shape_error("inner dimensions must agree: A is " +
                       std::to_string(a.rows()) + "x" +
                       std::to_string(a.cols()) + ", B is " +
                       std::to_string(b.rows()) + "x" +
                       std::to_string(b.cols()));
  if (c.rows() != a.rows() || c.cols() != b.cols())
    return shape_error("C must be " + std::to_string(a.rows()) + "x" +
                       std::to_string(b.cols()) + ", got " +
                       std::to_string(c.rows()) + "x" +
                       std::to_string(c.cols()));

  GemmCallResult result;

  if (alpha != 0.0) {
    AabftMultiplier mult(launcher, config);
    const AabftResult product = mult.multiply_padded(a, b);
    if (product.error_detected()) ++result.faults_detected;
    result.corrections = product.corrections.size();
    result.recomputations = product.recomputations;
    result.ok = !product.uncorrectable && product.recheck_clean;

    for (std::size_t i = 0; i < c.rows(); ++i)
      for (std::size_t j = 0; j < c.cols(); ++j)
        c(i, j) = alpha * product.c(i, j) + beta * c(i, j);
  } else {
    for (std::size_t i = 0; i < c.rows(); ++i)
      for (std::size_t j = 0; j < c.cols(); ++j) c(i, j) = beta * c(i, j);
  }

  return result;
}

}  // namespace aabft::abft
