#include "abft/blas.hpp"

#include "core/require.hpp"

namespace aabft::abft {

using linalg::Matrix;

GemmCallResult protected_gemm(gpusim::Launcher& launcher, double alpha,
                              const Matrix& a, const Matrix& b, double beta,
                              Matrix& c, const AabftConfig& config) {
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  AABFT_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
                "C must be m x n");

  GemmCallResult result;

  if (alpha != 0.0) {
    AabftMultiplier mult(launcher, config);
    const AabftResult product = mult.multiply_padded(a, b);
    if (product.error_detected()) ++result.faults_detected;
    result.corrections = product.corrections.size();
    result.recomputations = product.recomputations;
    result.ok = !product.uncorrectable && product.recheck_clean;

    for (std::size_t i = 0; i < c.rows(); ++i)
      for (std::size_t j = 0; j < c.cols(); ++j)
        c(i, j) = alpha * product.c(i, j) + beta * c(i, j);
  } else {
    for (std::size_t i = 0; i < c.rows(); ++i)
      for (std::size_t j = 0; j < c.cols(); ++j) c(i, j) = beta * c(i, j);
  }

  return result;
}

}  // namespace aabft::abft
