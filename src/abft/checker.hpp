// Check kernel — paper Algorithm 2.
//
// Invoked after the matrix product: per result sub-matrix it (a) determines
// the rounding-error bounds from the p-max lists collected at encode time,
// (b) recomputes the reference row/column checksums, and (c) compares the
// reference against the checksums that went through the multiplication,
// flagging every difference that exceeds its bound.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "abft/bounds.hpp"
#include "abft/checksum.hpp"
#include "abft/pmax.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

enum class CheckKind : std::uint8_t {
  kColumn,  ///< column checksum (bottom row of a block) mismatched
  kRow,     ///< row checksum (right column of a block) mismatched
};

[[nodiscard]] std::string to_string(CheckKind kind);

struct Mismatch {
  CheckKind kind = CheckKind::kColumn;
  std::size_t block_row = 0;  ///< block coordinates within the C_fc grid
  std::size_t block_col = 0;
  /// Local index within the block: the column (kColumn) or row (kRow) whose
  /// checksum failed; ranges over 0..BS inclusive (BS = the checksum line).
  std::size_t local = 0;
  double reference = 0.0;  ///< recomputed checksum
  double stored = 0.0;     ///< checksum that went through the multiplication
  double epsilon = 0.0;    ///< bound the comparison used

  [[nodiscard]] double difference() const noexcept;
};

struct CheckReport {
  std::vector<Mismatch> mismatches;

  [[nodiscard]] bool clean() const noexcept { return mismatches.empty(); }
  [[nodiscard]] std::size_t count(CheckKind kind) const noexcept;
};

/// Bound-relevant statistics the check kernel also exposes (Tables II-IV):
/// the epsilons computed for every column/row checksum comparison.
struct EpsilonTrace {
  std::vector<double> column_epsilons;  ///< one per checked column checksum
  std::vector<double> row_epsilons;     ///< one per checked row checksum

  [[nodiscard]] double average() const;
};

/// Run the full check over a full-checksum product C_fc.
///   inner_dim — K extent of the multiply (cols of A == rows of B);
///   a_pmax    — per encoded row of A_cc (from encode_columns);
///   b_pmax    — per encoded column of B_rc (from encode_rows).
/// If `trace` is non-null, every computed epsilon is recorded.
[[nodiscard]] CheckReport check_product(gpusim::Launcher& launcher,
                                        const linalg::Matrix& c_fc,
                                        const PartitionedCodec& codec,
                                        const PMaxTable& a_pmax,
                                        const PMaxTable& b_pmax,
                                        std::size_t inner_dim,
                                        const BoundParams& params,
                                        EpsilonTrace* trace = nullptr);

}  // namespace aabft::abft
