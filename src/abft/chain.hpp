// Protected product chains: C = A_1 * A_2 * ... * A_k with every
// intermediate multiplication under A-ABFT protection.
//
// Long chains are where silent data corruption hurts most — an undetected
// error in an early product contaminates everything downstream. Each link
// runs through the protected multiplier (detection, localisation,
// correction, recompute fallback) and the chain aggregates the outcome.
#pragma once

#include <cstddef>
#include <vector>

#include "abft/aabft.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

struct ChainResult {
  linalg::Matrix c;                 ///< the final product
  std::size_t multiplies = 0;       ///< protected links executed
  std::size_t faults_detected = 0;  ///< links that flagged an error
  std::size_t corrections = 0;
  std::size_t recomputations = 0;
  bool ok = true;                   ///< every link ended recheck-clean
};

/// Evaluate the chain left to right. Requires at least one matrix and
/// conforming shapes; inner dimensions may be arbitrary (padding is applied
/// per link as needed).
[[nodiscard]] ChainResult multiply_chain(
    gpusim::Launcher& launcher,
    const std::vector<const linalg::Matrix*>& chain,
    const AabftConfig& config = {});

}  // namespace aabft::abft
