#include "core/sync.hpp"
#include "abft/gemv.hpp"

#include <cmath>

#include "abft/upper_bound.hpp"
#include "core/require.hpp"
#include "gpusim/fault_site.hpp"

namespace aabft::abft {

using gpusim::BlockCtx;
using gpusim::Dim3;
using gpusim::FaultSite;

ProtectedGemv::ProtectedGemv(gpusim::Launcher& launcher,
                             const linalg::Matrix& a, AabftConfig config)
    : launcher_(launcher),
      config_(config),
      codec_(config.bs),
      a_cc_(encode_columns(launcher, a, codec_, config.p)),
      rows_(a.rows()),
      cols_(a.cols()) {
  AABFT_REQUIRE(config_.valid(), "invalid A-ABFT configuration");
}

GemvResult ProtectedGemv::multiply(const std::vector<double>& x) {
  AABFT_REQUIRE(x.size() == cols_, "vector length must match A's columns");
  const std::size_t bs = codec_.bs();
  const std::size_t enc_rows = a_cc_.data.rows();

  GemvResult result;
  std::size_t attempts = config_.max_recompute_attempts + 1;
  while (attempts-- > 0) {
    // y_enc = A_cc * x: one block per encoded row, ascending-k accumulation
    // (the injectable sites match the GEMM kernel's inner loop).
    std::vector<double> y_enc(enc_rows, 0.0);
    launcher_.launch("gemv", Dim3{enc_rows, 1, 1}, [&](BlockCtx& blk) {
      auto& math = blk.math;
      const std::size_t r = blk.block.x;
      math.load_doubles(cols_ + (r == 0 ? cols_ : 0));  // row + x (once)
      double acc = 0.0;
      // Fault fence over the whole row (all ops use module 0 and the k-index
      // of the column): the fenced dot helpers are bit-identical to the
      // per-op chain below.
      const bool row_hot = math.needs_instrumented(
          FaultSite::kInnerMul, FaultSite::kInnerAdd, 0, 0, 0,
          static_cast<std::int64_t>(cols_) - 1);
      if (!row_hot) {
        const double* a_row = a_cc_.data.row(r).data();
        acc = config_.gemm.use_fma
                  ? math.dot_fma(a_row, x.data(), cols_, acc)
                  : math.dot_mul_add(a_row, x.data(), cols_, acc);
      } else {
        for (std::size_t k = 0; k < cols_; ++k) {
          const auto kk = static_cast<std::int64_t>(k);
          if (config_.gemm.use_fma) {
            acc = math.faulty_fma(a_cc_.data(r, k), x[k], acc,
                                  FaultSite::kInnerAdd, 0, kk);
          } else {
            const double prod = math.faulty_mul(a_cc_.data(r, k), x[k],
                                                FaultSite::kInnerMul, 0, kk);
            acc = math.faulty_add(acc, prod, FaultSite::kInnerAdd, 0, kk);
          }
        }
      }
      y_enc[r] = math.faulty_add(0.0, acc, FaultSite::kFinalAdd, 0, 0);
      math.store_doubles(1);
    });

    // Runtime maxima of |x| (the "vector side" of the upper bound).
    PMaxList x_pmax(config_.p);
    launcher_.launch("gemv_pmax_x", Dim3{1, 1, 1}, [&](BlockCtx& blk) {
      auto& math = blk.math;
      math.load_doubles(cols_);
      std::size_t comparisons = 0;
      for (std::size_t k = 0; k < cols_; ++k)
        comparisons += x_pmax.offer(std::fabs(x[k]), k);
      math.count_compares(comparisons);
    });

    // Check every block checksum.
    std::vector<GemvMismatch> current;
    core::Mutex current_mutex{core::LockRank::kKernelReduction,
                              "kernel.gemv_merge"};
    launcher_.launch("gemv_check", Dim3{enc_rows / (bs + 1), 1, 1},
                     [&](BlockCtx& blk) {
      auto& math = blk.math;
      const std::size_t block = blk.block.x;
      const std::size_t row0 = block * (bs + 1);
      math.load_doubles(bs + 1);
      // Fenced span sum (no injection sites in the check kernel): identical
      // rounding chain and add count as the per-op loop it replaces.
      const double ref = math.sum_strided(y_enc.data() + row0, bs, 1);
      const double stored = y_enc[codec_.checksum_index(block)];

      const double y_bound = determine_upper_bound(
          a_cc_.pmax[codec_.checksum_index(block)], x_pmax);
      double y_data = 0.0;
      for (std::size_t i = 0; i < bs; ++i)
        y_data = std::max(y_data,
                          // aabft-lint: allow (bound estimate, bulk-counted)
                          a_cc_.pmax[row0 + i].max_value() * x_pmax.max_value());
      math.count_compares(2 * config_.p * config_.p + bs);
      const double eps = checksum_epsilon(cols_, bs, y_bound, y_data,
                                          config_.bounds);
      math.count_muls(6);
      math.count_adds(6);

      const double diff = math.abs(math.sub(ref, stored));
      math.count_compares(1);
      if (!(diff <= eps)) {  // NaN-aware
        const core::MutexLock lock(current_mutex);
        current.push_back({block, ref, stored, eps});
      }
    });

    // The first failing pass's mismatches are the detection report; a later
    // clean recompute sets ok without erasing what was detected.
    if (!current.empty() && result.mismatches.empty())
      result.mismatches = current;

    if (current.empty() || attempts == 0) {
      result.ok = current.empty();
      result.y.resize(rows_);
      for (std::size_t i = 0; i < rows_; ++i)
        result.y[i] = y_enc[codec_.enc_index(i)];
      return result;
    }
    ++result.recomputations;  // transient fault: re-execute the product
  }
  return result;  // unreachable (loop always returns)
}

}  // namespace aabft::abft
