// Plain (checksum-only) encode kernels for the baseline ABFT schemes.
//
// The fixed-bound ABFT and SEA-ABFT contenders of the paper's evaluation use
// the same partitioned checksum encoding as A-ABFT but do *not* collect
// p-max information — that is exactly the work A-ABFT adds. Keeping the lean
// kernels separate lets Table I charge each scheme its true encode cost.
#pragma once

#include "abft/checksum.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::baselines {

/// A -> A_cc via a per-block column-checksum kernel (no p-max collection).
[[nodiscard]] linalg::Matrix plain_encode_columns(gpusim::Launcher& launcher,
                                                  const linalg::Matrix& a,
                                                  const abft::PartitionedCodec& codec);

/// B -> B_rc via a per-block row-checksum kernel (no p-max collection).
[[nodiscard]] linalg::Matrix plain_encode_rows(gpusim::Launcher& launcher,
                                               const linalg::Matrix& b,
                                               const abft::PartitionedCodec& codec);

}  // namespace aabft::baselines
