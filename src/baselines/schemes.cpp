#include "baselines/schemes.hpp"

#include <array>
#include <optional>
#include <string>
#include <utility>

#include "abft/blas3.hpp"
#include "abft/checker.hpp"
#include "abft/protected_lu.hpp"

namespace aabft::baselines {

using linalg::Matrix;

namespace {

/// Shared recoverable-misuse validation for product ops. `bs` == 0 for
/// schemes without a checksum blocking requirement.
std::optional<Error> validate_shapes(const Matrix& a, const Matrix& b,
                                     std::size_t bs) {
  if (a.cols() != b.rows())
    return shape_error("inner dimensions must agree: A is " +
                       std::to_string(a.rows()) + "x" +
                       std::to_string(a.cols()) + ", B is " +
                       std::to_string(b.rows()) + "x" +
                       std::to_string(b.cols()));
  if (bs != 0 && (a.rows() % bs != 0 || b.cols() % bs != 0))
    return shape_error("A's rows and B's columns must be multiples of the "
                       "checksum block size " +
                       std::to_string(bs));
  return std::nullopt;
}

/// Recoverable-misuse validation for the single-operand ops (B is ignored):
/// SYRK takes any nonempty A, the factorizations need a nonempty square A.
std::optional<Error> validate_single_operand(const OpDescriptor& desc,
                                             const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0)
    return Error{ErrorCode::kInvalidArgument, "empty operand"};
  if (desc.is_factorization() && a.rows() != a.cols())
    return shape_error(std::string(to_string(desc.kind)) +
                       " needs a square matrix, got " +
                       std::to_string(a.rows()) + "x" +
                       std::to_string(a.cols()));
  return std::nullopt;
}

Error unsupported(std::string_view scheme, OpKind kind) {
  return unsupported_op_error("scheme '" + std::string(scheme) +
                              "' does not implement op kind '" +
                              std::string(to_string(kind)) + "'");
}

class FixedAbftChecker final : public ProductChecker {
 public:
  FixedAbftChecker(gpusim::Launcher& launcher,
                   const abft::PartitionedCodec& codec, double epsilon)
      : launcher_(launcher), codec_(codec), epsilon_(epsilon) {}

  bool flags_error(const Matrix& c_fc) override {
    return !fixed_check_product(launcher_, c_fc, codec_, epsilon_).clean();
  }

 private:
  gpusim::Launcher& launcher_;
  const abft::PartitionedCodec& codec_;
  double epsilon_;
};

class AabftChecker final : public ProductChecker {
 public:
  AabftChecker(const ProductCheckContext& ctx, abft::BoundParams bounds)
      : ctx_(ctx), bounds_(bounds) {}

  bool flags_error(const Matrix& c_fc) override {
    return !abft::check_product(ctx_.launcher, c_fc, ctx_.codec,
                                ctx_.a_cc.pmax, ctx_.b_rc.pmax, ctx_.inner_dim,
                                bounds_, nullptr)
                .clean();
  }

 private:
  ProductCheckContext ctx_;
  abft::BoundParams bounds_;
};

class SeaAbftChecker final : public ProductChecker {
 public:
  /// Runs the SEA norm kernels once at construction; every check reuses the
  /// precomputed bounds (matching how a real deployment amortises them).
  explicit SeaAbftChecker(const ProductCheckContext& ctx)
      : ctx_(ctx),
        bounds_(compute_sea_bounds(ctx.launcher, ctx.a_cc.data, ctx.b_rc.data,
                                   ctx.codec)) {}

  bool flags_error(const Matrix& c_fc) override {
    return !sea_check_product(ctx_.launcher, c_fc, ctx_.codec, bounds_,
                              ctx_.inner_dim, nullptr)
                .clean();
  }

 private:
  ProductCheckContext ctx_;
  SeaBounds bounds_;
};

SchemeResult to_scheme_result(abft::AabftResult raw) {
  SchemeResult result;
  result.c = std::move(raw.c);
  // An online panel-screen mismatch is a detection even when the tile replay
  // repaired it before the end-of-product check (which then reports clean).
  result.detected = raw.error_detected() || raw.panel_detections > 0;
  result.corrected = !raw.corrections.empty() && raw.recheck_clean;
  result.corrections = raw.corrections.size();
  result.panel_detections = raw.panel_detections;
  result.panel_recomputes = raw.panel_recomputes;
  result.fused_encode = raw.fused;
  result.block_recomputes = raw.block_recomputes;
  result.recomputed = raw.recomputations;
  result.clean = !raw.uncorrectable && raw.recheck_clean;
  return result;
}

Result<OpOutcome> chol_outcome(abft::CholResult raw) {
  if (raw.not_positive_definite)
    return Error{ErrorCode::kInvalidArgument,
                 "matrix is not positive definite"};
  OpOutcome out;
  out.c = std::move(raw.l);
  out.detected = raw.faults_detected > 0 || raw.carry_mismatches > 0 ||
                 raw.panel_detections > 0;
  out.corrections = raw.corrections;
  out.panel_detections = raw.panel_detections;
  out.panel_recomputes = raw.panel_recomputes;
  out.fused_encode = raw.fused_updates;
  out.block_recomputes = raw.block_recomputes;
  // Panel-level full repairs: per-update re-executions plus whole-factor
  // restarts after a carry mismatch.
  out.recomputed = raw.recomputations + raw.factor_restarts;
  out.protected_updates = raw.protected_updates;
  out.corrected = out.detected && raw.ok && raw.corrections > 0;
  out.clean = raw.ok;
  return out;
}

Result<OpOutcome> lu_outcome(abft::LuResult raw) {
  if (raw.singular)
    return Error{ErrorCode::kInvalidArgument,
                 "matrix is singular (to working precision)"};
  OpOutcome out;
  out.c = std::move(raw.lu);
  out.perm = std::move(raw.perm);
  out.detected = raw.faults_detected > 0 || raw.carry_mismatches > 0 ||
                 raw.panel_detections > 0;
  out.corrections = raw.corrections;
  out.panel_detections = raw.panel_detections;
  out.panel_recomputes = raw.panel_recomputes;
  out.fused_encode = raw.fused_updates;
  out.block_recomputes = raw.block_recomputes;
  out.recomputed = raw.recomputations + raw.factor_restarts;
  out.protected_updates = raw.protected_updates;
  out.corrected = out.detected && raw.ok && raw.corrections > 0;
  out.clean = raw.ok;
  return out;
}

/// Whole-result majority vote over three raw factorizations. Element voting
/// (the GEMM TMR) is unsound here: a fault that flips a pivot decision
/// changes the permutation, making per-element comparison meaningless — so
/// replicas vote as units, compared bitwise including the permutation.
Result<OpOutcome> tmr_factor_vote(gpusim::Launcher& launcher, OpKind kind,
                                  const Matrix& a,
                                  const linalg::GemmConfig& gemm) {
  std::array<abft::RawFactorResult, 3> runs;
  for (auto& run : runs)
    run = kind == OpKind::kCholesky ? abft::raw_cholesky(launcher, a, gemm)
                                    : abft::raw_lu(launcher, a, gemm);

  auto agree = [](const abft::RawFactorResult& x,
                  const abft::RawFactorResult& y) {
    return x.ok == y.ok && x.perm == y.perm && x.f == y.f;  // bitwise
  };
  const bool ab = agree(runs[0], runs[1]);
  const bool ac = agree(runs[0], runs[2]);
  const bool bc = agree(runs[1], runs[2]);

  std::size_t winner = 0;
  bool majority = true;
  if (ab || ac) {
    winner = 0;
  } else if (bc) {
    winner = 1;
  } else {
    majority = false;  // all three disagree: nothing to vouch for
  }

  abft::RawFactorResult& voted = runs[winner];
  if (majority && !voted.ok)
    return Error{ErrorCode::kInvalidArgument,
                 kind == OpKind::kCholesky
                     ? "matrix is not positive definite"
                     : "matrix is singular (to working precision)"};

  OpOutcome out;
  out.c = std::move(voted.f);
  out.perm = std::move(voted.perm);
  out.detected = !(ab && ac && bc);
  out.corrected = out.detected && majority;
  out.clean = majority;
  return out;
}

}  // namespace

UnprotectedScheme::UnprotectedScheme(gpusim::Launcher& launcher,
                                     linalg::GemmConfig gemm)
    : launcher_(launcher), gemm_(gemm), mult_(launcher, gemm) {}

Result<OpOutcome> UnprotectedScheme::execute(const OpDescriptor& desc,
                                             const Matrix& a,
                                             const Matrix& b) {
  SchemeResult result;
  switch (desc.kind) {
    case OpKind::kGemm: {
      if (auto err = validate_shapes(a, b, 0)) return *err;
      result.c = mult_.multiply(a, b);
      return result;
    }
    case OpKind::kSyrk: {
      if (auto err = validate_single_operand(desc, a)) return *err;
      result.c = abft::raw_syrk(launcher_, a, gemm_);
      return result;
    }
    case OpKind::kCholesky:
    case OpKind::kLu: {
      if (auto err = validate_single_operand(desc, a)) return *err;
      abft::RawFactorResult raw =
          desc.kind == OpKind::kCholesky ? abft::raw_cholesky(launcher_, a, gemm_)
                                         : abft::raw_lu(launcher_, a, gemm_);
      if (!raw.ok)
        return Error{ErrorCode::kInvalidArgument,
                     desc.kind == OpKind::kCholesky
                         ? "matrix is not positive definite"
                         : "matrix is singular (to working precision)"};
      result.c = std::move(raw.f);
      result.perm = std::move(raw.perm);
      return result;
    }
  }
  return unsupported(name(), desc.kind);
}

FixedAbftScheme::FixedAbftScheme(gpusim::Launcher& launcher,
                                 FixedAbftConfig config)
    : mult_(launcher, config), bs_(config.bs), epsilon_(config.epsilon) {}

Result<OpOutcome> FixedAbftScheme::execute(const OpDescriptor& desc,
                                           const Matrix& a, const Matrix& b) {
  if (desc.kind != OpKind::kGemm) return unsupported(name(), desc.kind);
  if (auto err = validate_shapes(a, b, bs_)) return *err;
  FixedAbftResult raw = mult_.multiply(a, b);
  SchemeResult result;
  result.c = std::move(raw.c);
  result.detected = raw.error_detected();
  result.clean = !result.detected;  // detection-only scheme
  return result;
}

std::unique_ptr<ProductChecker> FixedAbftScheme::make_checker(
    const ProductCheckContext& ctx) {
  return std::make_unique<FixedAbftChecker>(ctx.launcher, ctx.codec, epsilon_);
}

AabftScheme::AabftScheme(gpusim::Launcher& launcher, abft::AabftConfig config)
    : launcher_(launcher), mult_(launcher, config) {}

Result<OpOutcome> AabftScheme::execute(const OpDescriptor& desc,
                                       const Matrix& a, const Matrix& b) {
  switch (desc.kind) {
    case OpKind::kGemm: {
      Result<abft::AabftResult> raw = mult_.multiply(a, b);
      if (!raw.ok()) return raw.error();
      return to_scheme_result(std::move(raw).value());
    }
    case OpKind::kSyrk: {
      if (auto err = validate_single_operand(desc, a)) return *err;
      abft::ProtectedSyrk syrk(launcher_, mult_.config());
      return to_scheme_result(syrk.multiply(a));
    }
    case OpKind::kCholesky: {
      if (auto err = validate_single_operand(desc, a)) return *err;
      // Panel width = the checksum block size, so the carry stays aligned.
      abft::ProtectedCholConfig config;
      config.panel = mult_.config().bs;
      config.aabft = mult_.config();
      abft::ProtectedCholesky chol(launcher_, config);
      return chol_outcome(chol.factor(a));
    }
    case OpKind::kLu: {
      if (auto err = validate_single_operand(desc, a)) return *err;
      abft::ProtectedLuConfig config;
      config.panel = mult_.config().bs;
      config.aabft = mult_.config();
      abft::ProtectedLu lu(launcher_, config);
      return lu_outcome(lu.factor(a));
    }
  }
  return unsupported(name(), desc.kind);
}

std::vector<Result<OpOutcome>> AabftScheme::execute_batch(
    OpKind kind, std::span<const std::pair<Matrix, Matrix>> problems) {
  if (kind != OpKind::kGemm)
    return ProtectedBlas3::execute_batch(kind, problems);  // sequential
  std::vector<Result<abft::AabftResult>> raw = mult_.multiply_batch(problems);
  std::vector<Result<OpOutcome>> out;
  out.reserve(raw.size());
  for (auto& r : raw) {
    if (r.ok())
      out.push_back(to_scheme_result(std::move(r).value()));
    else
      out.push_back(r.error());
  }
  return out;
}

Result<OpOutcome> AabftScheme::execute_preencoded(const abft::PreencodedA& pre,
                                                  const Matrix& b) {
  Result<abft::AabftResult> raw = mult_.multiply_preencoded(pre, b);
  if (!raw.ok()) return raw.error();
  return to_scheme_result(std::move(raw).value());
}

std::vector<Result<OpOutcome>> AabftScheme::execute_batch_preencoded(
    std::span<const abft::PreencodedProblem> problems) {
  std::vector<Result<abft::AabftResult>> raw =
      mult_.multiply_batch_preencoded(problems);
  std::vector<Result<OpOutcome>> out;
  out.reserve(raw.size());
  for (auto& r : raw) {
    if (r.ok())
      out.push_back(to_scheme_result(std::move(r).value()));
    else
      out.push_back(r.error());
  }
  return out;
}

std::unique_ptr<ProductChecker> AabftScheme::make_checker(
    const ProductCheckContext& ctx) {
  return std::make_unique<AabftChecker>(ctx, mult_.config().bounds);
}

SeaAbftScheme::SeaAbftScheme(gpusim::Launcher& launcher, SeaAbftConfig config)
    : mult_(launcher, config), bs_(config.bs) {}

Result<OpOutcome> SeaAbftScheme::execute(const OpDescriptor& desc,
                                         const Matrix& a, const Matrix& b) {
  if (desc.kind != OpKind::kGemm) return unsupported(name(), desc.kind);
  if (auto err = validate_shapes(a, b, bs_)) return *err;
  SeaAbftResult raw = mult_.multiply(a, b);
  SchemeResult result;
  result.c = std::move(raw.c);
  result.detected = raw.error_detected();
  result.clean = !result.detected;  // detection-only scheme
  return result;
}

std::unique_ptr<ProductChecker> SeaAbftScheme::make_checker(
    const ProductCheckContext& ctx) {
  return std::make_unique<SeaAbftChecker>(ctx);
}

TmrScheme::TmrScheme(gpusim::Launcher& launcher, TmrConfig config)
    : launcher_(launcher), gemm_(config.gemm), mult_(launcher, config) {}

Result<OpOutcome> TmrScheme::execute(const OpDescriptor& desc, const Matrix& a,
                                     const Matrix& b) {
  switch (desc.kind) {
    case OpKind::kGemm:
    case OpKind::kSyrk: {
      // SYRK is the element-voting TMR GEMM of (A, A^T).
      const Matrix* rhs = &b;
      Matrix a_t;
      if (desc.kind == OpKind::kSyrk) {
        if (auto err = validate_single_operand(desc, a)) return *err;
        a_t = a.transposed();
        rhs = &a_t;
      } else if (auto err = validate_shapes(a, b, 0)) {
        return *err;
      }
      TmrResult raw = mult_.multiply(a, *rhs);
      SchemeResult result;
      result.c = std::move(raw.c);
      result.detected = raw.error_detected();
      // Majority voting repairs any element where two replicas still agree.
      result.corrected =
          raw.mismatched_elements > 0 && raw.unresolved_elements == 0;
      result.clean = raw.unresolved_elements == 0;
      return result;
    }
    case OpKind::kCholesky:
    case OpKind::kLu: {
      if (auto err = validate_single_operand(desc, a)) return *err;
      return tmr_factor_vote(launcher_, desc.kind, a, gemm_);
    }
  }
  return unsupported(name(), desc.kind);
}

DiverseTmrScheme::DiverseTmrScheme(gpusim::Launcher& launcher,
                                   DiverseTmrConfig config)
    : mult_(launcher, config) {}

Result<OpOutcome> DiverseTmrScheme::execute(const OpDescriptor& desc,
                                            const Matrix& a, const Matrix& b) {
  if (desc.kind != OpKind::kGemm) return unsupported(name(), desc.kind);
  if (auto err = validate_shapes(a, b, 0)) return *err;
  DiverseTmrResult raw = mult_.multiply(a, b);
  SchemeResult result;
  result.c = std::move(raw.c);
  result.detected = raw.error_detected();
  result.corrected =
      raw.disagreeing_elements > 0 && raw.unresolved_elements == 0;
  result.clean = raw.unresolved_elements == 0;
  return result;
}

std::vector<std::unique_ptr<ProtectedBlas3>> make_schemes(
    gpusim::Launcher& launcher, const SchemeSuiteConfig& config) {
  std::vector<std::unique_ptr<ProtectedBlas3>> schemes;

  schemes.push_back(
      std::make_unique<UnprotectedScheme>(launcher, config.gemm));

  FixedAbftConfig fixed;
  fixed.bs = config.bs;
  fixed.epsilon = config.fixed_epsilon;
  fixed.gemm = config.gemm;
  schemes.push_back(std::make_unique<FixedAbftScheme>(launcher, fixed));

  abft::AabftConfig aabft;
  aabft.bs = config.bs;
  aabft.p = config.p;
  aabft.bounds = config.bounds;
  aabft.gemm = config.gemm;
  schemes.push_back(std::make_unique<AabftScheme>(launcher, aabft));

  SeaAbftConfig sea;
  sea.bs = config.bs;
  sea.gemm = config.gemm;
  schemes.push_back(std::make_unique<SeaAbftScheme>(launcher, sea));

  TmrConfig tmr;
  tmr.gemm = config.gemm;
  schemes.push_back(std::make_unique<TmrScheme>(launcher, tmr));

  if (config.include_diverse_tmr) {
    DiverseTmrConfig diverse;
    diverse.p = config.p;
    diverse.gemm = config.gemm;
    schemes.push_back(std::make_unique<DiverseTmrScheme>(launcher, diverse));
  }

  return schemes;
}

}  // namespace aabft::baselines
