#include "baselines/schemes.hpp"

#include <optional>
#include <string>

#include "abft/checker.hpp"

namespace aabft::baselines {

using linalg::Matrix;

namespace {

/// Shared recoverable-misuse validation. `bs` == 0 for schemes without a
/// checksum blocking requirement.
std::optional<Error> validate_shapes(const Matrix& a, const Matrix& b,
                                     std::size_t bs) {
  if (a.cols() != b.rows())
    return shape_error("inner dimensions must agree: A is " +
                       std::to_string(a.rows()) + "x" +
                       std::to_string(a.cols()) + ", B is " +
                       std::to_string(b.rows()) + "x" +
                       std::to_string(b.cols()));
  if (bs != 0 && (a.rows() % bs != 0 || b.cols() % bs != 0))
    return shape_error("A's rows and B's columns must be multiples of the "
                       "checksum block size " +
                       std::to_string(bs));
  return std::nullopt;
}

class FixedAbftChecker final : public ProductChecker {
 public:
  FixedAbftChecker(gpusim::Launcher& launcher,
                   const abft::PartitionedCodec& codec, double epsilon)
      : launcher_(launcher), codec_(codec), epsilon_(epsilon) {}

  bool flags_error(const Matrix& c_fc) override {
    return !fixed_check_product(launcher_, c_fc, codec_, epsilon_).clean();
  }

 private:
  gpusim::Launcher& launcher_;
  const abft::PartitionedCodec& codec_;
  double epsilon_;
};

class AabftChecker final : public ProductChecker {
 public:
  AabftChecker(const ProductCheckContext& ctx, abft::BoundParams bounds)
      : ctx_(ctx), bounds_(bounds) {}

  bool flags_error(const Matrix& c_fc) override {
    return !abft::check_product(ctx_.launcher, c_fc, ctx_.codec,
                                ctx_.a_cc.pmax, ctx_.b_rc.pmax, ctx_.inner_dim,
                                bounds_, nullptr)
                .clean();
  }

 private:
  ProductCheckContext ctx_;
  abft::BoundParams bounds_;
};

class SeaAbftChecker final : public ProductChecker {
 public:
  /// Runs the SEA norm kernels once at construction; every check reuses the
  /// precomputed bounds (matching how a real deployment amortises them).
  explicit SeaAbftChecker(const ProductCheckContext& ctx)
      : ctx_(ctx),
        bounds_(compute_sea_bounds(ctx.launcher, ctx.a_cc.data, ctx.b_rc.data,
                                   ctx.codec)) {}

  bool flags_error(const Matrix& c_fc) override {
    return !sea_check_product(ctx_.launcher, c_fc, ctx_.codec, bounds_,
                              ctx_.inner_dim, nullptr)
                .clean();
  }

 private:
  ProductCheckContext ctx_;
  SeaBounds bounds_;
};

}  // namespace

UnprotectedScheme::UnprotectedScheme(gpusim::Launcher& launcher,
                                     linalg::GemmConfig gemm)
    : mult_(launcher, gemm) {}

Result<SchemeResult> UnprotectedScheme::multiply(const Matrix& a,
                                                 const Matrix& b) {
  if (auto err = validate_shapes(a, b, 0)) return *err;
  SchemeResult result;
  result.c = mult_.multiply(a, b);
  return result;
}

FixedAbftScheme::FixedAbftScheme(gpusim::Launcher& launcher,
                                 FixedAbftConfig config)
    : mult_(launcher, config), bs_(config.bs), epsilon_(config.epsilon) {}

Result<SchemeResult> FixedAbftScheme::multiply(const Matrix& a,
                                               const Matrix& b) {
  if (auto err = validate_shapes(a, b, bs_)) return *err;
  FixedAbftResult raw = mult_.multiply(a, b);
  SchemeResult result;
  result.c = std::move(raw.c);
  result.detected = raw.error_detected();
  result.clean = !result.detected;  // detection-only scheme
  return result;
}

std::unique_ptr<ProductChecker> FixedAbftScheme::make_checker(
    const ProductCheckContext& ctx) {
  return std::make_unique<FixedAbftChecker>(ctx.launcher, ctx.codec, epsilon_);
}

AabftScheme::AabftScheme(gpusim::Launcher& launcher, abft::AabftConfig config)
    : mult_(launcher, config) {}

namespace {

SchemeResult to_scheme_result(abft::AabftResult raw) {
  SchemeResult result;
  result.c = std::move(raw.c);
  result.detected = raw.error_detected();
  result.corrected = !raw.corrections.empty() && raw.recheck_clean;
  result.corrections = raw.corrections.size();
  result.block_recomputes = raw.block_recomputes;
  result.recomputed = raw.recomputations;
  result.clean = !raw.uncorrectable && raw.recheck_clean;
  return result;
}

}  // namespace

Result<SchemeResult> AabftScheme::multiply(const Matrix& a, const Matrix& b) {
  Result<abft::AabftResult> raw = mult_.multiply(a, b);
  if (!raw.ok()) return raw.error();
  return to_scheme_result(std::move(raw).value());
}

std::vector<Result<SchemeResult>> AabftScheme::multiply_batch(
    std::span<const std::pair<Matrix, Matrix>> problems) {
  std::vector<Result<abft::AabftResult>> raw = mult_.multiply_batch(problems);
  std::vector<Result<SchemeResult>> out;
  out.reserve(raw.size());
  for (auto& r : raw) {
    if (r.ok())
      out.push_back(to_scheme_result(std::move(r).value()));
    else
      out.push_back(r.error());
  }
  return out;
}

std::unique_ptr<ProductChecker> AabftScheme::make_checker(
    const ProductCheckContext& ctx) {
  return std::make_unique<AabftChecker>(ctx, mult_.config().bounds);
}

SeaAbftScheme::SeaAbftScheme(gpusim::Launcher& launcher, SeaAbftConfig config)
    : mult_(launcher, config), bs_(config.bs) {}

Result<SchemeResult> SeaAbftScheme::multiply(const Matrix& a, const Matrix& b) {
  if (auto err = validate_shapes(a, b, bs_)) return *err;
  SeaAbftResult raw = mult_.multiply(a, b);
  SchemeResult result;
  result.c = std::move(raw.c);
  result.detected = raw.error_detected();
  result.clean = !result.detected;  // detection-only scheme
  return result;
}

std::unique_ptr<ProductChecker> SeaAbftScheme::make_checker(
    const ProductCheckContext& ctx) {
  return std::make_unique<SeaAbftChecker>(ctx);
}

TmrScheme::TmrScheme(gpusim::Launcher& launcher, TmrConfig config)
    : mult_(launcher, config) {}

Result<SchemeResult> TmrScheme::multiply(const Matrix& a, const Matrix& b) {
  if (auto err = validate_shapes(a, b, 0)) return *err;
  TmrResult raw = mult_.multiply(a, b);
  SchemeResult result;
  result.c = std::move(raw.c);
  result.detected = raw.error_detected();
  // Majority voting repairs any element where two replicas still agree.
  result.corrected =
      raw.mismatched_elements > 0 && raw.unresolved_elements == 0;
  result.clean = raw.unresolved_elements == 0;
  return result;
}

DiverseTmrScheme::DiverseTmrScheme(gpusim::Launcher& launcher,
                                   DiverseTmrConfig config)
    : mult_(launcher, config) {}

Result<SchemeResult> DiverseTmrScheme::multiply(const Matrix& a,
                                                const Matrix& b) {
  if (auto err = validate_shapes(a, b, 0)) return *err;
  DiverseTmrResult raw = mult_.multiply(a, b);
  SchemeResult result;
  result.c = std::move(raw.c);
  result.detected = raw.error_detected();
  result.corrected =
      raw.disagreeing_elements > 0 && raw.unresolved_elements == 0;
  result.clean = raw.unresolved_elements == 0;
  return result;
}

std::vector<std::unique_ptr<ProtectedMultiplier>> make_schemes(
    gpusim::Launcher& launcher, const SchemeSuiteConfig& config) {
  std::vector<std::unique_ptr<ProtectedMultiplier>> schemes;

  schemes.push_back(
      std::make_unique<UnprotectedScheme>(launcher, config.gemm));

  FixedAbftConfig fixed;
  fixed.bs = config.bs;
  fixed.epsilon = config.fixed_epsilon;
  fixed.gemm = config.gemm;
  schemes.push_back(std::make_unique<FixedAbftScheme>(launcher, fixed));

  abft::AabftConfig aabft;
  aabft.bs = config.bs;
  aabft.p = config.p;
  aabft.bounds = config.bounds;
  aabft.gemm = config.gemm;
  schemes.push_back(std::make_unique<AabftScheme>(launcher, aabft));

  SeaAbftConfig sea;
  sea.bs = config.bs;
  sea.gemm = config.gemm;
  schemes.push_back(std::make_unique<SeaAbftScheme>(launcher, sea));

  TmrConfig tmr;
  tmr.gemm = config.gemm;
  schemes.push_back(std::make_unique<TmrScheme>(launcher, tmr));

  if (config.include_diverse_tmr) {
    DiverseTmrConfig diverse;
    diverse.p = config.p;
    diverse.gemm = config.gemm;
    schemes.push_back(std::make_unique<DiverseTmrScheme>(launcher, diverse));
  }

  return schemes;
}

}  // namespace aabft::baselines
