// Diverse-kernel TMR — the TMR variant the paper says one would *actually*
// deploy, built here as an extension.
//
// Section VI-A: "in real applications one would prefer to use three
// different kernels with different implementations to ensure different
// execution paths. This in turn would cause different rounding errors in the
// final results, which makes the direct comparison of the results impossible
// and which makes the computation of rounding error bounds necessary."
//
// This multiplier runs three genuinely different kernels —
//   1. the register-blocked GEMM with separate multiply + add,
//   2. the same blocking with fused multiply-add accumulation,
//   3. a pairwise-(tree-)accumulation GEMM,
// and votes element-wise with *probabilistic rounding-error bounds* from the
// Section IV model: replicas r and s agree on element (i, j) iff
//
//   |c_r - c_s| <= omega * sqrt(sigma_r(i,j)^2 + sigma_s(i,j)^2),
//
// with per-element sigmas derived from the operands' p-max tables (the same
// machinery A-ABFT uses for its checksum bounds). This demonstrates that the
// autonomous bound determination is not tied to checksums at all.
#pragma once

#include <cstddef>

#include "abft/bounds.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/matrix.hpp"

namespace aabft::baselines {

struct DiverseTmrConfig {
  std::size_t p = 2;          ///< p-max parameter for the bound determination
  double omega = 3.0;         ///< agreement-interval width
  linalg::GemmConfig gemm;    ///< blocking of the first two replicas
};

struct DiverseTmrResult {
  linalg::Matrix c;                     ///< voted result
  std::size_t disagreeing_elements = 0; ///< some replica pair beyond its bound
  std::size_t unresolved_elements = 0;  ///< no replica pair within its bound
  [[nodiscard]] bool error_detected() const noexcept {
    return disagreeing_elements > 0;
  }
};

class DiverseTmrMultiplier {
 public:
  DiverseTmrMultiplier(gpusim::Launcher& launcher, DiverseTmrConfig config);

  [[nodiscard]] DiverseTmrResult multiply(const linalg::Matrix& a,
                                          const linalg::Matrix& b);

 private:
  gpusim::Launcher& launcher_;
  DiverseTmrConfig config_;
};

}  // namespace aabft::baselines
