// Standard ABFT with a manually set error bound — the paper's first
// performance contender (Table I).
//
// This is the classic Huang/Abraham scheme in partitioned form: encode,
// multiply, recompute and compare checksums — with one global epsilon the
// *user* must supply. It has the lowest overhead of the protected schemes
// but cannot operate autonomously: a bound that fits one input distribution
// silently mis-detects on another (which the bound-quality tests
// demonstrate).
#pragma once

#include <cstddef>

#include "abft/checker.hpp"
#include "abft/checksum.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/matrix.hpp"

namespace aabft::baselines {

struct FixedAbftConfig {
  std::size_t bs = 32;
  double epsilon = 1e-9;     ///< the manual, global comparison bound
  linalg::GemmConfig gemm;
};

/// Compare every block checksum of c_fc against its recomputed reference
/// with the single fixed bound. Exposed separately so fault-injection
/// campaigns can check an already-computed product.
[[nodiscard]] abft::CheckReport fixed_check_product(
    gpusim::Launcher& launcher, const linalg::Matrix& c_fc,
    const abft::PartitionedCodec& codec, double epsilon);

struct FixedAbftResult {
  linalg::Matrix c;
  abft::CheckReport report;
  [[nodiscard]] bool error_detected() const noexcept { return !report.clean(); }
};

class FixedAbftMultiplier {
 public:
  FixedAbftMultiplier(gpusim::Launcher& launcher, FixedAbftConfig config);

  [[nodiscard]] FixedAbftResult multiply(const linalg::Matrix& a,
                                         const linalg::Matrix& b);

  [[nodiscard]] const FixedAbftConfig& config() const noexcept { return config_; }

 private:
  gpusim::Launcher& launcher_;
  FixedAbftConfig config_;
  abft::PartitionedCodec codec_;
};

}  // namespace aabft::baselines
