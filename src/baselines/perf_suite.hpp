// The Table-I experiment as a reusable component: run every scheme's full
// pipeline on the simulator at one matrix size and price the launch logs
// with the analytic K20C model. Used by bench_table1_performance and by the
// integration tests that lock in the paper's performance *shape* (ordering
// and gap trends).
//
// The suite iterates the schemes through the shared ProtectedMultiplier
// interface (baselines/scheme.hpp) — adding a contender means adding it to
// make_schemes, not touching this driver.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::baselines {

struct SchemePerf {
  std::string scheme;          ///< ProtectedMultiplier::name() key
  double model_gflops = 0.0;   ///< 2 n^3 / modelled K20C seconds
  double model_seconds = 0.0;
  double host_seconds = 0.0;   ///< wall clock of the simulation itself
  bool false_positive = false; ///< scheme mis-detected on the clean run
  /// Launch log of the pipeline (kept for projection to larger sizes).
  std::vector<gpusim::LaunchStats> log;
};

struct PerfSuiteResult {
  std::size_t n = 0;
  /// One entry per scheme, in make_schemes order.
  std::vector<SchemePerf> schemes;

  /// Lookup by scheme name; throws std::logic_error when absent.
  [[nodiscard]] const SchemePerf& scheme(std::string_view name) const;

  [[nodiscard]] const SchemePerf& unprotected() const { return scheme("unprotected"); }
  [[nodiscard]] const SchemePerf& fixed_abft() const { return scheme("fixed-abft"); }
  [[nodiscard]] const SchemePerf& aabft() const { return scheme("a-abft"); }
  [[nodiscard]] const SchemePerf& sea_abft() const { return scheme("sea-abft"); }
  [[nodiscard]] const SchemePerf& tmr() const { return scheme("tmr"); }

  /// The paper's headline ordering at every size.
  [[nodiscard]] bool ordering_holds() const {
    return fixed_abft().model_gflops > aabft().model_gflops &&
           aabft().model_gflops > sea_abft().model_gflops &&
           sea_abft().model_gflops > tmr().model_gflops;
  }

  /// A-ABFT's fraction of the manual-bound ABFT performance (rises with n).
  [[nodiscard]] double aabft_over_abft() const {
    return aabft().model_gflops / fixed_abft().model_gflops;
  }
};

struct PerfSuiteConfig {
  std::size_t bs = 32;
  std::size_t p = 2;
  double fixed_epsilon = 1e-8;
  std::uint64_t seed = 2014;
  /// Include the diverse-kernel TMR contender (~3 extra GEMMs per run).
  bool include_diverse_tmr = false;
};

/// Run all scheme pipelines on fresh uniform inputs of size n x n.
[[nodiscard]] PerfSuiteResult run_perf_suite(std::size_t n,
                                             const PerfSuiteConfig& config = {});

/// Project a measured launch log from size n0 to size n by scaling each
/// kernel's counters with its asymptotic complexity: GEMM-class kernels are
/// O(n^3) in flops and staged loads (O(n^2) stores); every other kernel in
/// the suite (encode, check, norms, p-max reductions, votes) is O(n^2).
/// This extends the Table-I model to the paper's 8192 without hours of
/// simulated execution — valid because the timing model consumes only the
/// counters, which scale exactly.
[[nodiscard]] std::vector<gpusim::LaunchStats> project_log(
    const std::vector<gpusim::LaunchStats>& log, std::size_t n0,
    std::size_t n);

/// Projected per-scheme GFLOPS at size n from a measured suite at n0.
[[nodiscard]] PerfSuiteResult project_perf_suite(const PerfSuiteResult& base,
                                                 std::size_t n0,
                                                 std::size_t n);

}  // namespace aabft::baselines
