// SEA-ABFT — ABFT with bounds from Simplified Error Analysis
// (Roy-Chowdhury & Banerjee, FTCS'93), the paper's main qualitative
// contender for bound quality (Tables II-IV) and detection (Figure 4).
//
// SEA neglects second-order rounding terms and bounds the total error of a
// checksum comparison by norms of the involved vectors. For a column
// checksum of a block with m = BS data rows a_i, checksum row a_cs and the
// column b of B (inner-product length n):
//
//   |c_cs - c_cs*| < ( (n + 2m - 2) * ||b||_2 * sum_i ||a_i||_2
//                      + n * ||a_cs||_2 * ||b||_2 ) * epsilon_M
//
// with epsilon_M = 2^-t. Row checksums are bounded symmetrically. The norms
// are computed at runtime by (poorly utilised) reduction kernels — the
// source of SEA-ABFT's performance penalty in Table I.
#pragma once

#include <cstddef>
#include <vector>

#include "abft/checker.hpp"
#include "abft/checksum.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/matrix.hpp"

namespace aabft::baselines {

/// Precomputed norm data the SEA check consumes.
struct SeaBounds {
  std::vector<double> a_row_norms;        ///< per encoded row of A_cc
  std::vector<double> b_col_norms;        ///< per encoded column of B_rc
  std::vector<double> a_block_norm_sum;   ///< per block row: sum of data-row norms
  std::vector<double> b_block_norm_sum;   ///< per block col: sum of data-col norms
  int t = 52;                             ///< mantissa bits for epsilon_M = 2^-t
};

/// Run the norm kernels over the encoded operands.
[[nodiscard]] SeaBounds compute_sea_bounds(gpusim::Launcher& launcher,
                                           const linalg::Matrix& a_cc,
                                           const linalg::Matrix& b_rc,
                                           const abft::PartitionedCodec& codec);

/// The SEA epsilon for one column-checksum comparison (exposed for tests and
/// the bound-quality tables). `n` is the inner-product length.
[[nodiscard]] double sea_column_epsilon(const SeaBounds& bounds,
                                        const abft::PartitionedCodec& codec,
                                        std::size_t block_row,
                                        std::size_t enc_col, std::size_t n);

/// The SEA epsilon for one row-checksum comparison.
[[nodiscard]] double sea_row_epsilon(const SeaBounds& bounds,
                                     const abft::PartitionedCodec& codec,
                                     std::size_t enc_row, std::size_t block_col,
                                     std::size_t n);

/// Check a full-checksum product with SEA bounds.
[[nodiscard]] abft::CheckReport sea_check_product(
    gpusim::Launcher& launcher, const linalg::Matrix& c_fc,
    const abft::PartitionedCodec& codec, const SeaBounds& bounds,
    std::size_t inner_dim, abft::EpsilonTrace* trace = nullptr);

struct SeaAbftConfig {
  std::size_t bs = 32;
  linalg::GemmConfig gemm;
};

struct SeaAbftResult {
  linalg::Matrix c;
  abft::CheckReport report;
  [[nodiscard]] bool error_detected() const noexcept { return !report.clean(); }
};

class SeaAbftMultiplier {
 public:
  SeaAbftMultiplier(gpusim::Launcher& launcher, SeaAbftConfig config);

  [[nodiscard]] SeaAbftResult multiply(const linalg::Matrix& a,
                                       const linalg::Matrix& b);

  [[nodiscard]] const SeaAbftConfig& config() const noexcept { return config_; }

 private:
  gpusim::Launcher& launcher_;
  SeaAbftConfig config_;
  abft::PartitionedCodec codec_;
};

}  // namespace aabft::baselines
