#include "core/sync.hpp"
#include "baselines/fixed_abft.hpp"


#include "baselines/plain_encode.hpp"
#include "core/require.hpp"

namespace aabft::baselines {

using abft::CheckKind;
using abft::CheckReport;
using abft::Mismatch;
using gpusim::BlockCtx;
using gpusim::Dim3;
using linalg::Matrix;

CheckReport fixed_check_product(gpusim::Launcher& launcher, const Matrix& c_fc,
                                const abft::PartitionedCodec& codec,
                                double epsilon) {
  AABFT_REQUIRE(epsilon >= 0.0, "epsilon must be non-negative");
  const std::size_t bs = codec.bs();
  AABFT_REQUIRE(c_fc.rows() % (bs + 1) == 0 && c_fc.cols() % (bs + 1) == 0,
                "C_fc dimensions must be multiples of BS+1");
  const std::size_t grid_rows = c_fc.rows() / (bs + 1);
  const std::size_t grid_cols = c_fc.cols() / (bs + 1);

  CheckReport report;
  core::Mutex report_mutex{core::LockRank::kKernelReduction,
                           "kernel.fixed_merge"};

  launcher.launch("check_fixed", Dim3{grid_cols, grid_rows, 1},
                  [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t gbr = blk.block.y;
    const std::size_t gbc = blk.block.x;
    const std::size_t row0 = gbr * (bs + 1);
    const std::size_t col0 = gbc * (bs + 1);
    math.load_doubles((bs + 1) * (bs + 1));

    std::vector<Mismatch> local;
    for (std::size_t j = 0; j <= bs; ++j) {
      // Bulk-counted column sum, identical rounding chain to per-op add().
      const double ref =
          math.sum_strided(c_fc.data() + row0 * c_fc.cols() + col0 + j, bs,
                           c_fc.cols());
      const double stored = c_fc(row0 + bs, col0 + j);
      const double diff = math.abs(math.sub(ref, stored));
      math.count_compares(1);
      if (!(diff <= epsilon))  // NaN-aware comparison
        local.push_back({CheckKind::kColumn, gbr, gbc, j, ref, stored, epsilon});
    }
    for (std::size_t i = 0; i <= bs; ++i) {
      const double ref =
          math.sum_strided(c_fc.data() + (row0 + i) * c_fc.cols() + col0, bs,
                           1);
      const double stored = c_fc(row0 + i, col0 + bs);
      const double diff = math.abs(math.sub(ref, stored));
      math.count_compares(1);
      if (!(diff <= epsilon))  // NaN-aware comparison
        local.push_back({CheckKind::kRow, gbr, gbc, i, ref, stored, epsilon});
    }
    if (!local.empty()) {
      const core::MutexLock lock(report_mutex);
      report.mismatches.insert(report.mismatches.end(), local.begin(),
                               local.end());
    }
  });

  return report;
}

FixedAbftMultiplier::FixedAbftMultiplier(gpusim::Launcher& launcher,
                                         FixedAbftConfig config)
    : launcher_(launcher), config_(config), codec_(config.bs) {
  AABFT_REQUIRE(config_.gemm.valid(), "invalid GEMM configuration");
  AABFT_REQUIRE(config_.epsilon >= 0.0, "epsilon must be non-negative");
}

FixedAbftResult FixedAbftMultiplier::multiply(const Matrix& a,
                                              const Matrix& b) {
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const Matrix a_cc = plain_encode_columns(launcher_, a, codec_);
  const Matrix b_rc = plain_encode_rows(launcher_, b, codec_);
  Matrix c_fc = linalg::blocked_matmul(launcher_, a_cc, b_rc, config_.gemm);
  FixedAbftResult result;
  result.report = fixed_check_product(launcher_, c_fc, codec_, config_.epsilon);
  result.c = codec_.strip(c_fc);
  return result;
}

}  // namespace aabft::baselines
