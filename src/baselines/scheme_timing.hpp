// Scheme-level timing composition for the Table I reproduction.
//
// Each scheme's pipeline is executed on the simulator, which logs every
// kernel launch with exact op/byte counts. This module prices the log with
// the analytic Kepler model (gpusim/perf_model), assigning each kernel its
// utilisation class by name and applying the paper's overlap: the global
// p-max reduction "is executed in parallel to the matrix multiplication
// kernel" (Section V-A), so its time is hidden behind the GEMM.
#pragma once

#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/perf_model.hpp"

namespace aabft::baselines {

struct SchemeTiming {
  double gemm_seconds = 0.0;        ///< product kernel(s)
  double overlapped_seconds = 0.0;  ///< kernels hidden behind the GEMM
  double overhead_seconds = 0.0;    ///< encode / check / norm / vote kernels

  [[nodiscard]] double total_seconds() const noexcept {
    return overhead_seconds + std::max(gemm_seconds, overlapped_seconds);
  }
};

/// Price a launch log. Kernel classes (by name):
///   gemm                         — GEMM profile
///   reduce_pmax_*                — reduction profile, overlapped with GEMM
///   row_norms / col_norms        — reduction profile (SEA's penalty)
///   everything else              — streaming (bandwidth-bound) profile
[[nodiscard]] SchemeTiming price_launch_log(
    const gpusim::DeviceSpec& device,
    const std::vector<gpusim::LaunchStats>& log);

}  // namespace aabft::baselines
