#include "baselines/scheme_timing.hpp"

#include <string_view>

namespace aabft::baselines {

SchemeTiming price_launch_log(const gpusim::DeviceSpec& device,
                              const std::vector<gpusim::LaunchStats>& log) {
  SchemeTiming timing;
  for (const auto& entry : log) {
    const std::string_view name = entry.kernel_name;
    if (name == "gemm") {
      timing.gemm_seconds +=
          gpusim::kernel_seconds(device, entry.counters, gpusim::gemm_profile());
    } else if (name.starts_with("reduce_pmax")) {
      timing.overlapped_seconds += gpusim::kernel_seconds(
          device, entry.counters, gpusim::reduction_profile());
    } else if (name == "row_norms" || name == "col_norms") {
      timing.overhead_seconds += gpusim::kernel_seconds(
          device, entry.counters, gpusim::reduction_profile());
    } else {
      timing.overhead_seconds += gpusim::kernel_seconds(
          device, entry.counters, gpusim::streaming_profile());
    }
  }
  return timing;
}

}  // namespace aabft::baselines
