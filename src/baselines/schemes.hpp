// Adapters binding every concrete multiplier to the ProtectedMultiplier
// interface, plus the factory that assembles the standard contender list.
//
// The adapters own their multiplier and translate its scheme-specific result
// type into the shared SchemeResult core; the rich APIs (AabftResult with
// check reports and corrections, TMR vote counts, ...) remain available on
// the concrete classes for code that needs the detail.
#pragma once

#include <memory>
#include <vector>

#include "abft/aabft.hpp"
#include "abft/bounds.hpp"
#include "baselines/diverse_tmr.hpp"
#include "baselines/fixed_abft.hpp"
#include "baselines/scheme.hpp"
#include "baselines/sea_abft.hpp"
#include "baselines/tmr.hpp"
#include "baselines/unprotected.hpp"

namespace aabft::baselines {

/// One configuration for the whole contender list (Table I / Figure 4 use
/// the same blocking and bound parameters across schemes).
struct SchemeSuiteConfig {
  std::size_t bs = 32;           ///< checksum block size (partitioned schemes)
  std::size_t p = 2;             ///< p-max parameter (A-ABFT, diverse TMR)
  double fixed_epsilon = 1e-8;   ///< the manual bound of fixed ABFT
  abft::BoundParams bounds;      ///< omega / policy / fma for A-ABFT
  linalg::GemmConfig gemm;
  /// Diverse-kernel TMR costs ~3 diverse GEMMs; off by default so the quick
  /// suites stay quick.
  bool include_diverse_tmr = false;
};

class UnprotectedScheme final : public ProtectedMultiplier {
 public:
  UnprotectedScheme(gpusim::Launcher& launcher, linalg::GemmConfig gemm = {});
  [[nodiscard]] std::string_view name() const noexcept override {
    return "unprotected";
  }
  [[nodiscard]] Result<SchemeResult> multiply(const linalg::Matrix& a,
                                              const linalg::Matrix& b) override;

 private:
  UnprotectedMultiplier mult_;
};

class FixedAbftScheme final : public ProtectedMultiplier {
 public:
  FixedAbftScheme(gpusim::Launcher& launcher, FixedAbftConfig config = {});
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fixed-abft";
  }
  [[nodiscard]] Result<SchemeResult> multiply(const linalg::Matrix& a,
                                              const linalg::Matrix& b) override;
  [[nodiscard]] std::unique_ptr<ProductChecker> make_checker(
      const ProductCheckContext& ctx) override;

 private:
  FixedAbftMultiplier mult_;
  std::size_t bs_;
  double epsilon_;
};

class AabftScheme final : public ProtectedMultiplier {
 public:
  AabftScheme(gpusim::Launcher& launcher, abft::AabftConfig config = {});
  [[nodiscard]] std::string_view name() const noexcept override {
    return "a-abft";
  }
  [[nodiscard]] Result<SchemeResult> multiply(const linalg::Matrix& a,
                                              const linalg::Matrix& b) override;
  /// Pipelined across streams — see AabftMultiplier::multiply_batch.
  [[nodiscard]] std::vector<Result<SchemeResult>> multiply_batch(
      std::span<const std::pair<linalg::Matrix, linalg::Matrix>> problems)
      override;
  [[nodiscard]] std::unique_ptr<ProductChecker> make_checker(
      const ProductCheckContext& ctx) override;

 private:
  abft::AabftMultiplier mult_;
};

class SeaAbftScheme final : public ProtectedMultiplier {
 public:
  SeaAbftScheme(gpusim::Launcher& launcher, SeaAbftConfig config = {});
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sea-abft";
  }
  [[nodiscard]] Result<SchemeResult> multiply(const linalg::Matrix& a,
                                              const linalg::Matrix& b) override;
  [[nodiscard]] std::unique_ptr<ProductChecker> make_checker(
      const ProductCheckContext& ctx) override;

 private:
  SeaAbftMultiplier mult_;
  std::size_t bs_;
};

class TmrScheme final : public ProtectedMultiplier {
 public:
  TmrScheme(gpusim::Launcher& launcher, TmrConfig config = {});
  [[nodiscard]] std::string_view name() const noexcept override { return "tmr"; }
  [[nodiscard]] Result<SchemeResult> multiply(const linalg::Matrix& a,
                                              const linalg::Matrix& b) override;

 private:
  TmrMultiplier mult_;
};

class DiverseTmrScheme final : public ProtectedMultiplier {
 public:
  DiverseTmrScheme(gpusim::Launcher& launcher, DiverseTmrConfig config = {});
  [[nodiscard]] std::string_view name() const noexcept override {
    return "diverse-tmr";
  }
  [[nodiscard]] Result<SchemeResult> multiply(const linalg::Matrix& a,
                                              const linalg::Matrix& b) override;

 private:
  DiverseTmrMultiplier mult_;
};

/// The standard contender list in Table-I order: unprotected, fixed-abft,
/// a-abft, sea-abft, tmr (and diverse-tmr when enabled).
[[nodiscard]] std::vector<std::unique_ptr<ProtectedMultiplier>> make_schemes(
    gpusim::Launcher& launcher, const SchemeSuiteConfig& config = {});

}  // namespace aabft::baselines
