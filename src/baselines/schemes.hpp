// Adapters binding every concrete scheme to the ProtectedBlas3 operation
// interface, plus the factory that assembles the standard contender list.
//
// The adapters own their engines and translate scheme-specific result types
// into the shared OpOutcome core; the rich APIs (AabftResult with check
// reports and corrections, LuResult/CholResult with carry counters, TMR vote
// counts, ...) remain available on the concrete classes for code that needs
// the detail.
//
// Operation coverage:
//   - a-abft:      GEMM, SYRK, Cholesky, LU — the full protected family
//                  (factorizations via the checksum-carry panel engines).
//   - unprotected: GEMM, SYRK, Cholesky, LU — raw references, no checking.
//   - tmr:         GEMM/SYRK by element-voting replicas, Cholesky/LU by
//                  whole-result majority vote over three raw factorizations
//                  (element voting is unsound under pivot divergence).
//   - fixed-abft, sea-abft, diverse-tmr: GEMM only; other kinds come back
//                  as ErrorCode::kUnsupportedOp.
#pragma once

#include <memory>
#include <vector>

#include "abft/aabft.hpp"
#include "abft/bounds.hpp"
#include "baselines/diverse_tmr.hpp"
#include "baselines/fixed_abft.hpp"
#include "baselines/scheme.hpp"
#include "baselines/sea_abft.hpp"
#include "baselines/tmr.hpp"
#include "baselines/unprotected.hpp"

namespace aabft::baselines {

/// One configuration for the whole contender list (Table I / Figure 4 use
/// the same blocking and bound parameters across schemes).
struct SchemeSuiteConfig {
  std::size_t bs = 32;           ///< checksum block size (partitioned schemes)
  std::size_t p = 2;             ///< p-max parameter (A-ABFT, diverse TMR)
  double fixed_epsilon = 1e-8;   ///< the manual bound of fixed ABFT
  abft::BoundParams bounds;      ///< omega / policy / fma for A-ABFT
  linalg::GemmConfig gemm;
  /// Diverse-kernel TMR costs ~3 diverse GEMMs; off by default so the quick
  /// suites stay quick.
  bool include_diverse_tmr = false;
};

class UnprotectedScheme final : public ProtectedBlas3 {
 public:
  UnprotectedScheme(gpusim::Launcher& launcher, linalg::GemmConfig gemm = {});
  [[nodiscard]] std::string_view name() const noexcept override {
    return "unprotected";
  }
  [[nodiscard]] bool supports(OpKind /*kind*/) const noexcept override {
    return true;  // raw references for every op kind
  }
  [[nodiscard]] Result<OpOutcome> execute(const OpDescriptor& desc,
                                          const linalg::Matrix& a,
                                          const linalg::Matrix& b) override;

 private:
  gpusim::Launcher& launcher_;
  linalg::GemmConfig gemm_;
  UnprotectedMultiplier mult_;
};

class FixedAbftScheme final : public ProtectedBlas3 {
 public:
  FixedAbftScheme(gpusim::Launcher& launcher, FixedAbftConfig config = {});
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fixed-abft";
  }
  [[nodiscard]] Result<OpOutcome> execute(const OpDescriptor& desc,
                                          const linalg::Matrix& a,
                                          const linalg::Matrix& b) override;
  [[nodiscard]] std::unique_ptr<ProductChecker> make_checker(
      const ProductCheckContext& ctx) override;

 private:
  FixedAbftMultiplier mult_;
  std::size_t bs_;
  double epsilon_;
};

class AabftScheme final : public ProtectedBlas3 {
 public:
  AabftScheme(gpusim::Launcher& launcher, abft::AabftConfig config = {});
  [[nodiscard]] std::string_view name() const noexcept override {
    return "a-abft";
  }
  [[nodiscard]] bool supports(OpKind /*kind*/) const noexcept override {
    return true;  // the full protected BLAS-3 / factorization family
  }
  [[nodiscard]] Result<OpOutcome> execute(const OpDescriptor& desc,
                                          const linalg::Matrix& a,
                                          const linalg::Matrix& b) override;
  /// GEMM batches pipeline across streams (AabftMultiplier::multiply_batch);
  /// other op kinds run sequentially.
  [[nodiscard]] std::vector<Result<OpOutcome>> execute_batch(
      OpKind kind,
      std::span<const std::pair<linalg::Matrix, linalg::Matrix>> problems)
      override;
  /// Preencoded-A GEMM entry points for the serving layer's operand cache:
  /// A's checksum artifacts come from the cache's one-time encode instead of
  /// a per-request encode pass. Bit-identical to execute()/execute_batch()
  /// on the same operands (see AabftMultiplier::multiply_preencoded).
  [[nodiscard]] Result<OpOutcome> execute_preencoded(
      const abft::PreencodedA& pre, const linalg::Matrix& b);
  [[nodiscard]] std::vector<Result<OpOutcome>> execute_batch_preencoded(
      std::span<const abft::PreencodedProblem> problems);
  [[nodiscard]] std::unique_ptr<ProductChecker> make_checker(
      const ProductCheckContext& ctx) override;

 private:
  gpusim::Launcher& launcher_;
  abft::AabftMultiplier mult_;
};

class SeaAbftScheme final : public ProtectedBlas3 {
 public:
  SeaAbftScheme(gpusim::Launcher& launcher, SeaAbftConfig config = {});
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sea-abft";
  }
  [[nodiscard]] Result<OpOutcome> execute(const OpDescriptor& desc,
                                          const linalg::Matrix& a,
                                          const linalg::Matrix& b) override;
  [[nodiscard]] std::unique_ptr<ProductChecker> make_checker(
      const ProductCheckContext& ctx) override;

 private:
  SeaAbftMultiplier mult_;
  std::size_t bs_;
};

class TmrScheme final : public ProtectedBlas3 {
 public:
  TmrScheme(gpusim::Launcher& launcher, TmrConfig config = {});
  [[nodiscard]] std::string_view name() const noexcept override { return "tmr"; }
  [[nodiscard]] bool supports(OpKind /*kind*/) const noexcept override {
    return true;  // replica voting covers every op kind
  }
  [[nodiscard]] Result<OpOutcome> execute(const OpDescriptor& desc,
                                          const linalg::Matrix& a,
                                          const linalg::Matrix& b) override;

 private:
  gpusim::Launcher& launcher_;
  linalg::GemmConfig gemm_;
  TmrMultiplier mult_;
};

class DiverseTmrScheme final : public ProtectedBlas3 {
 public:
  DiverseTmrScheme(gpusim::Launcher& launcher, DiverseTmrConfig config = {});
  [[nodiscard]] std::string_view name() const noexcept override {
    return "diverse-tmr";
  }
  [[nodiscard]] Result<OpOutcome> execute(const OpDescriptor& desc,
                                          const linalg::Matrix& a,
                                          const linalg::Matrix& b) override;

 private:
  DiverseTmrMultiplier mult_;
};

/// The standard contender list in Table-I order: unprotected, fixed-abft,
/// a-abft, sea-abft, tmr (and diverse-tmr when enabled).
[[nodiscard]] std::vector<std::unique_ptr<ProtectedBlas3>> make_schemes(
    gpusim::Launcher& launcher, const SchemeSuiteConfig& config = {});

}  // namespace aabft::baselines
