// Unprotected GEMM — the overhead reference point ("a completely unprotected
// matrix multiplication ... delivered up to 1048.4 GFLOPS" in the paper).
#pragma once

#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/matrix.hpp"

namespace aabft::baselines {

class UnprotectedMultiplier {
 public:
  UnprotectedMultiplier(gpusim::Launcher& launcher, linalg::GemmConfig config)
      : launcher_(launcher), config_(config) {}

  [[nodiscard]] linalg::Matrix multiply(const linalg::Matrix& a,
                                        const linalg::Matrix& b) {
    return linalg::blocked_matmul(launcher_, a, b, config_);
  }

 private:
  gpusim::Launcher& launcher_;
  linalg::GemmConfig config_;
};

}  // namespace aabft::baselines
