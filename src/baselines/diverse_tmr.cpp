#include "baselines/diverse_tmr.hpp"

#include <atomic>
#include <cmath>

#include "abft/pmax_scan.hpp"
#include "abft/rounding_report.hpp"
#include "core/require.hpp"

namespace aabft::baselines {

using gpusim::BlockCtx;
using gpusim::Dim3;
using linalg::Matrix;

DiverseTmrMultiplier::DiverseTmrMultiplier(gpusim::Launcher& launcher,
                                           DiverseTmrConfig config)
    : launcher_(launcher), config_(config) {
  AABFT_REQUIRE(config_.p >= 1 && config_.omega > 0 && config_.gemm.valid(),
                "invalid diverse-TMR configuration");
}

DiverseTmrResult DiverseTmrMultiplier::multiply(const Matrix& a,
                                                const Matrix& b) {
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const std::size_t n = a.cols();

  // Replica 1: separate multiply + add.
  linalg::GemmConfig mul_add = config_.gemm;
  mul_add.use_fma = false;
  const Matrix c1 = linalg::blocked_matmul(launcher_, a, b, mul_add);

  // Replica 2: fused multiply-add (one rounding per term).
  linalg::GemmConfig fma = config_.gemm;
  fma.use_fma = true;
  const Matrix c2 = linalg::blocked_matmul(launcher_, a, b, fma);

  // Replica 3: pairwise tree accumulation.
  const Matrix c3 = linalg::pairwise_matmul(launcher_, a, b);

  // Per-element rounding sigmas from the operands' p-max tables. The
  // sequential-sum model (Eq. 46) upper-bounds all three accumulation
  // orders (pairwise intermediate sums are no larger), so it is a sound
  // agreement bound for every replica pair.
  const abft::PMaxTable a_rows =
      abft::collect_row_pmax(launcher_, a, config_.p);
  const abft::PMaxTable b_cols =
      abft::collect_col_pmax(launcher_, b, config_.p);
  abft::BoundParams mul_add_params;
  mul_add_params.omega = config_.omega;
  const abft::RoundingAnalysis sigma_mul_add =
      abft::analyze_rounding(launcher_, a_rows, b_cols, n, mul_add_params);
  abft::BoundParams fma_params = mul_add_params;
  fma_params.fma = true;
  const abft::RoundingAnalysis sigma_fma =
      abft::analyze_rounding(launcher_, a_rows, b_cols, n, fma_params);

  DiverseTmrResult result;
  result.c = Matrix(a.rows(), b.cols(), 0.0);
  std::atomic<std::size_t> disagreeing{0};
  std::atomic<std::size_t> unresolved{0};

  constexpr std::size_t kTile = 64;
  const std::size_t tile_rows = (a.rows() + kTile - 1) / kTile;
  const std::size_t tile_cols = (b.cols() + kTile - 1) / kTile;
  const double omega = config_.omega;

  launcher_.launch("diverse_tmr_vote", Dim3{tile_cols, tile_rows, 1},
                   [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t row0 = blk.block.y * kTile;
    const std::size_t col0 = blk.block.x * kTile;
    const std::size_t h = std::min(kTile, a.rows() - row0);
    const std::size_t w = std::min(kTile, b.cols() - col0);
    math.load_doubles(5 * h * w);  // three replicas + two sigma fields
    std::size_t local_disagreeing = 0;
    std::size_t local_unresolved = 0;

    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < w; ++j) {
        const std::size_t gi = row0 + i;
        const std::size_t gj = col0 + j;
        const double v1 = c1(gi, gj);
        const double v2 = c2(gi, gj);
        const double v3 = c3(gi, gj);
        const double s1 = sigma_mul_add.sigma(gi, gj);
        const double s2 = sigma_fma.sigma(gi, gj);
        const double s3 = s1;  // sound stand-in for the pairwise replica

        // hypot avoids underflow of sigma^2 for tiny-magnitude elements.
        // Voting thresholds and deltas are bulk-counted below, not
        // injection sites.
        const double eps12 = omega * std::hypot(s1, s2);  // aabft-lint: allow
        const double eps13 = omega * std::hypot(s1, s3);  // aabft-lint: allow
        const double eps23 = omega * std::hypot(s2, s3);  // aabft-lint: allow
        math.count_muls(9);
        math.count_adds(3);

        // NaN-aware agreement: a NaN replica agrees with nothing.
        const bool agree12 = std::fabs(v1 - v2) <= eps12;  // aabft-lint: allow
        const bool agree13 = std::fabs(v1 - v3) <= eps13;  // aabft-lint: allow
        const bool agree23 = std::fabs(v2 - v3) <= eps23;  // aabft-lint: allow
        math.count_compares(3);

        double voted = v1;
        if (agree12 || agree13) {
          voted = v1;
        } else if (agree23) {
          voted = v2;
        } else {
          ++local_unresolved;
        }
        if (!(agree12 && agree13 && agree23)) ++local_disagreeing;
        result.c(gi, gj) = voted;
      }
    }
    math.store_doubles(h * w);
    disagreeing.fetch_add(local_disagreeing, std::memory_order_relaxed);
    unresolved.fetch_add(local_unresolved, std::memory_order_relaxed);
  });

  result.disagreeing_elements = disagreeing.load();
  result.unresolved_elements = unresolved.load();
  return result;
}

}  // namespace aabft::baselines
