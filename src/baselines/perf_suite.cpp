#include "baselines/perf_suite.hpp"

#include <chrono>

#include "abft/aabft.hpp"
#include "baselines/fixed_abft.hpp"
#include "baselines/scheme_timing.hpp"
#include "baselines/sea_abft.hpp"
#include "baselines/tmr.hpp"
#include "baselines/unprotected.hpp"
#include "core/rng.hpp"
#include "gpusim/perf_model.hpp"
#include "linalg/workload.hpp"

namespace aabft::baselines {

namespace {

template <typename Pipeline>
SchemePerf run_one(gpusim::Launcher& launcher, std::size_t n,
                   Pipeline&& pipeline) {
  launcher.clear_launch_log();
  const auto t0 = std::chrono::steady_clock::now();
  SchemePerf perf;
  perf.false_positive = pipeline();
  perf.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  perf.log = launcher.launch_log();
  const SchemeTiming timing = price_launch_log(launcher.device(), perf.log);
  perf.model_seconds = timing.total_seconds();
  const auto payload = static_cast<std::uint64_t>(2) * n * n * n;
  perf.model_gflops = gpusim::gflops(payload, perf.model_seconds);
  return perf;
}

SchemePerf project_one(const SchemePerf& base, std::size_t n0, std::size_t n) {
  SchemePerf perf;
  perf.log = project_log(base.log, n0, n);
  const SchemeTiming timing = price_launch_log(gpusim::k20c(), perf.log);
  perf.model_seconds = timing.total_seconds();
  const auto payload = static_cast<std::uint64_t>(2) * n * n * n;
  perf.model_gflops = gpusim::gflops(payload, perf.model_seconds);
  return perf;
}

}  // namespace

std::vector<gpusim::LaunchStats> project_log(
    const std::vector<gpusim::LaunchStats>& log, std::size_t n0,
    std::size_t n) {
  AABFT_REQUIRE(n0 > 0 && n > 0, "sizes must be positive");
  const double r = static_cast<double>(n) / static_cast<double>(n0);
  const double r2 = r * r;
  const double r3 = r2 * r;
  auto scale = [](std::uint64_t v, double f) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * f);
  };
  std::vector<gpusim::LaunchStats> out = log;
  for (auto& entry : out) {
    const bool cubic = entry.kernel_name.starts_with("gemm");
    const double flop_factor = cubic ? r3 : r2;
    entry.counters.adds = scale(entry.counters.adds, flop_factor);
    entry.counters.muls = scale(entry.counters.muls, flop_factor);
    entry.counters.fmas = scale(entry.counters.fmas, flop_factor);
    entry.counters.compares = scale(entry.counters.compares, flop_factor);
    // GEMM loads are staged per K-panel (O(n^3)); its stores and every
    // other kernel's traffic are O(n^2).
    entry.counters.bytes_loaded =
        scale(entry.counters.bytes_loaded, cubic ? r3 : r2);
    entry.counters.bytes_stored = scale(entry.counters.bytes_stored, r2);
    entry.blocks = scale(entry.blocks, r2);
  }
  return out;
}

PerfSuiteResult project_perf_suite(const PerfSuiteResult& base, std::size_t n0,
                                   std::size_t n) {
  PerfSuiteResult result;
  result.n = n;
  result.unprotected = project_one(base.unprotected, n0, n);
  result.fixed_abft = project_one(base.fixed_abft, n0, n);
  result.aabft = project_one(base.aabft, n0, n);
  result.sea_abft = project_one(base.sea_abft, n0, n);
  result.tmr = project_one(base.tmr, n0, n);
  return result;
}

PerfSuiteResult run_perf_suite(std::size_t n, const PerfSuiteConfig& config) {
  Rng rng(config.seed);
  const auto a = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  const auto b = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  gpusim::Launcher launcher;

  PerfSuiteResult result;
  result.n = n;

  UnprotectedMultiplier unprot(launcher, linalg::GemmConfig{});
  result.unprotected = run_one(launcher, n, [&] {
    (void)unprot.multiply(a, b);
    return false;
  });

  FixedAbftConfig fixed_config;
  fixed_config.bs = config.bs;
  fixed_config.epsilon = config.fixed_epsilon;
  FixedAbftMultiplier fixed(launcher, fixed_config);
  result.fixed_abft = run_one(
      launcher, n, [&] { return fixed.multiply(a, b).error_detected(); });

  abft::AabftConfig aabft_config;
  aabft_config.bs = config.bs;
  aabft_config.p = config.p;
  abft::AabftMultiplier aabft(launcher, aabft_config);
  result.aabft = run_one(
      launcher, n, [&] { return aabft.multiply(a, b).error_detected(); });

  SeaAbftConfig sea_config;
  sea_config.bs = config.bs;
  SeaAbftMultiplier sea(launcher, sea_config);
  result.sea_abft = run_one(
      launcher, n, [&] { return sea.multiply(a, b).error_detected(); });

  TmrMultiplier tmr(launcher, TmrConfig{});
  result.tmr = run_one(
      launcher, n, [&] { return tmr.multiply(a, b).error_detected(); });

  return result;
}

}  // namespace aabft::baselines
