#include "baselines/perf_suite.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "baselines/scheme_timing.hpp"
#include "baselines/schemes.hpp"
#include "core/require.hpp"
#include "core/rng.hpp"
#include "gpusim/perf_model.hpp"
#include "linalg/workload.hpp"

namespace aabft::baselines {

namespace {

void price(SchemePerf& perf, std::size_t n) {
  const SchemeTiming timing = price_launch_log(gpusim::k20c(), perf.log);
  perf.model_seconds = timing.total_seconds();
  const auto payload = static_cast<std::uint64_t>(2) * n * n * n;
  perf.model_gflops = gpusim::gflops(payload, perf.model_seconds);
}

SchemePerf run_one(gpusim::Launcher& launcher, std::size_t n,
                   ProtectedMultiplier& scheme, const linalg::Matrix& a,
                   const linalg::Matrix& b) {
  launcher.clear_launch_log();
  const auto t0 = std::chrono::steady_clock::now();
  SchemePerf perf;
  perf.scheme = std::string(scheme.name());
  const auto result = scheme.multiply(a, b);
  AABFT_ASSERT(result.ok(), "perf-suite multiply refused valid shapes");
  perf.false_positive = result->detected;
  perf.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  perf.log = launcher.launch_log();
  price(perf, n);
  return perf;
}

}  // namespace

const SchemePerf& PerfSuiteResult::scheme(std::string_view name) const {
  for (const auto& perf : schemes)
    if (perf.scheme == name) return perf;
  throw std::logic_error("perf suite has no scheme named '" +
                         std::string(name) + "'");
}

std::vector<gpusim::LaunchStats> project_log(
    const std::vector<gpusim::LaunchStats>& log, std::size_t n0,
    std::size_t n) {
  AABFT_REQUIRE(n0 > 0 && n > 0, "sizes must be positive");
  const double r = static_cast<double>(n) / static_cast<double>(n0);
  const double r2 = r * r;
  const double r3 = r2 * r;
  auto scale = [](std::uint64_t v, double f) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * f);
  };
  std::vector<gpusim::LaunchStats> out = log;
  for (auto& entry : out) {
    const bool cubic = entry.kernel_name.starts_with("gemm");
    const double flop_factor = cubic ? r3 : r2;
    entry.counters.adds = scale(entry.counters.adds, flop_factor);
    entry.counters.muls = scale(entry.counters.muls, flop_factor);
    entry.counters.fmas = scale(entry.counters.fmas, flop_factor);
    entry.counters.compares = scale(entry.counters.compares, flop_factor);
    // GEMM loads are staged per K-panel (O(n^3)); its stores and every
    // other kernel's traffic are O(n^2).
    entry.counters.bytes_loaded =
        scale(entry.counters.bytes_loaded, cubic ? r3 : r2);
    entry.counters.bytes_stored = scale(entry.counters.bytes_stored, r2);
    entry.blocks = scale(entry.blocks, r2);
  }
  return out;
}

PerfSuiteResult project_perf_suite(const PerfSuiteResult& base, std::size_t n0,
                                   std::size_t n) {
  PerfSuiteResult result;
  result.n = n;
  result.schemes.reserve(base.schemes.size());
  for (const auto& perf : base.schemes) {
    SchemePerf projected;
    projected.scheme = perf.scheme;
    projected.log = project_log(perf.log, n0, n);
    price(projected, n);
    result.schemes.push_back(std::move(projected));
  }
  return result;
}

PerfSuiteResult run_perf_suite(std::size_t n, const PerfSuiteConfig& config) {
  Rng rng(config.seed);
  const auto a = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  const auto b = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  gpusim::Launcher launcher;

  PerfSuiteResult result;
  result.n = n;

  SchemeSuiteConfig suite;
  suite.bs = config.bs;
  suite.p = config.p;
  suite.fixed_epsilon = config.fixed_epsilon;
  suite.include_diverse_tmr = config.include_diverse_tmr;
  for (const auto& scheme : make_schemes(launcher, suite))
    result.schemes.push_back(run_one(launcher, n, *scheme, a, b));

  return result;
}

}  // namespace aabft::baselines
