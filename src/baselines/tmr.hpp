// Triple modular redundancy — the paper's third performance contender.
//
// The multiplication runs three times with an identical kernel; a voter
// compares the three results element-wise. Because the executions are
// bit-identical in the fault-free case, the comparison is exact (no bounds
// needed) — the paper notes that realistic TMR with *diverse* kernels would
// again require rounding-error bounds, which is part of A-ABFT's motivation.
#pragma once

#include <cstddef>

#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/matrix.hpp"

namespace aabft::baselines {

struct TmrConfig {
  linalg::GemmConfig gemm;
};

struct TmrResult {
  linalg::Matrix c;                 ///< majority-voted result
  std::size_t mismatched_elements = 0;  ///< positions where a replica disagreed
  std::size_t unresolved_elements = 0;  ///< all three replicas disagreed
  [[nodiscard]] bool error_detected() const noexcept {
    return mismatched_elements > 0;
  }
};

class TmrMultiplier {
 public:
  TmrMultiplier(gpusim::Launcher& launcher, TmrConfig config);

  /// Three runs + element-wise majority vote. Faults injected through the
  /// launcher's controller hit (at most) one replica, since the controller
  /// fires one-shot.
  [[nodiscard]] TmrResult multiply(const linalg::Matrix& a,
                                   const linalg::Matrix& b);

 private:
  gpusim::Launcher& launcher_;
  TmrConfig config_;
};

}  // namespace aabft::baselines
