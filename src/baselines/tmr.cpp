#include "baselines/tmr.hpp"

#include <atomic>

#include "core/require.hpp"

namespace aabft::baselines {

using gpusim::BlockCtx;
using gpusim::Dim3;
using linalg::Matrix;

TmrMultiplier::TmrMultiplier(gpusim::Launcher& launcher, TmrConfig config)
    : launcher_(launcher), config_(config) {
  AABFT_REQUIRE(config_.gemm.valid(), "invalid GEMM configuration");
}

TmrResult TmrMultiplier::multiply(const Matrix& a, const Matrix& b) {
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const Matrix c1 = linalg::blocked_matmul(launcher_, a, b, config_.gemm);
  const Matrix c2 = linalg::blocked_matmul(launcher_, a, b, config_.gemm);
  const Matrix c3 = linalg::blocked_matmul(launcher_, a, b, config_.gemm);

  TmrResult result;
  result.c = Matrix(a.rows(), b.cols(), 0.0);
  std::atomic<std::size_t> mismatched{0};
  std::atomic<std::size_t> unresolved{0};

  // Voter kernel: tile-wise exact comparison and majority selection.
  constexpr std::size_t kTile = 64;
  const std::size_t tile_rows = (a.rows() + kTile - 1) / kTile;
  const std::size_t tile_cols = (b.cols() + kTile - 1) / kTile;
  launcher_.launch("tmr_vote", Dim3{tile_cols, tile_rows, 1},
                   [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t row0 = blk.block.y * kTile;
    const std::size_t col0 = blk.block.x * kTile;
    const std::size_t h = std::min(kTile, a.rows() - row0);
    const std::size_t w = std::min(kTile, b.cols() - col0);
    math.load_doubles(3 * h * w);
    std::size_t local_mismatched = 0;
    std::size_t local_unresolved = 0;
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < w; ++j) {
        const double v1 = c1(row0 + i, col0 + j);
        const double v2 = c2(row0 + i, col0 + j);
        const double v3 = c3(row0 + i, col0 + j);
        math.count_compares(2);
        double voted = v1;
        if (v1 == v2 || v1 == v3) {
          voted = v1;
          if (v1 != v2 || v1 != v3) ++local_mismatched;
        } else if (v2 == v3) {
          voted = v2;
          ++local_mismatched;
        } else {
          ++local_mismatched;
          ++local_unresolved;
        }
        result.c(row0 + i, col0 + j) = voted;
      }
    }
    math.store_doubles(h * w);
    mismatched.fetch_add(local_mismatched, std::memory_order_relaxed);
    unresolved.fetch_add(local_unresolved, std::memory_order_relaxed);
  });

  result.mismatched_elements = mismatched.load();
  result.unresolved_elements = unresolved.load();
  return result;
}

}  // namespace aabft::baselines
