// BLAS-3 / one-sided-factorization operation descriptors.
//
// The ProtectedBlas3 interface (scheme.hpp) executes *operations*, not just
// GEMMs. An OpDescriptor names the operation kind and its shape; every layer
// above the schemes — admission control, batch keys, the recovery ladder,
// benchmarks — keys off the descriptor instead of assuming C = A * B:
//
//   kGemm      C (m x q) = A (m x k) * B (k x q)
//   kSyrk      C (m x m) = A (m x k) * A^T        (B unused)
//   kCholesky  A (n x n) = L * L^T, SPD input     (B unused; m = k = q = n)
//   kLu        P A (n x n) = L * U, partial pivots (B unused; m = k = q = n)
//
// The flop model is per-op-kind (the classical LAPACK operation counts), so
// deadline-feasibility estimates stop over-charging factorizations as if
// they were full GEMMs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "linalg/matrix.hpp"

namespace aabft::baselines {

enum class OpKind : std::uint8_t {
  kGemm = 0,
  kSyrk,
  kCholesky,
  kLu,
};
inline constexpr std::size_t kNumOpKinds = 4;

[[nodiscard]] constexpr std::string_view to_string(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kGemm: return "gemm";
    case OpKind::kSyrk: return "syrk";
    case OpKind::kCholesky: return "cholesky";
    case OpKind::kLu: return "lu";
  }
  return "?";
}

/// Kind + shape of one operation. For GEMM the three extents are independent;
/// SYRK has q == m (the Gram result is square); the factorizations are square
/// in every extent (m == k == q == n).
struct OpDescriptor {
  OpKind kind = OpKind::kGemm;
  std::size_t m = 0;  ///< result rows
  std::size_t k = 0;  ///< inner dimension (== n for the factorizations)
  std::size_t q = 0;  ///< result columns

  [[nodiscard]] static constexpr OpDescriptor gemm(std::size_t m, std::size_t k,
                                                   std::size_t q) noexcept {
    return {OpKind::kGemm, m, k, q};
  }
  [[nodiscard]] static constexpr OpDescriptor syrk(std::size_t m,
                                                   std::size_t k) noexcept {
    return {OpKind::kSyrk, m, k, m};
  }
  [[nodiscard]] static constexpr OpDescriptor cholesky(std::size_t n) noexcept {
    return {OpKind::kCholesky, n, n, n};
  }
  [[nodiscard]] static constexpr OpDescriptor lu(std::size_t n) noexcept {
    return {OpKind::kLu, n, n, n};
  }

  /// Descriptor matching a concrete operand pair (B ignored except for GEMM).
  [[nodiscard]] static OpDescriptor of(OpKind kind, const linalg::Matrix& a,
                                       const linalg::Matrix& b) noexcept {
    switch (kind) {
      case OpKind::kGemm: return gemm(a.rows(), a.cols(), b.cols());
      case OpKind::kSyrk: return syrk(a.rows(), a.cols());
      case OpKind::kCholesky: return cholesky(a.rows());
      case OpKind::kLu: return lu(a.rows());
    }
    return {};
  }

  /// True when the operation consumes a second operand.
  [[nodiscard]] constexpr bool uses_b() const noexcept {
    return kind == OpKind::kGemm;
  }

  /// True when the operation is a one-sided factorization (square input,
  /// panel-granular protection, no admission-time padding).
  [[nodiscard]] constexpr bool is_factorization() const noexcept {
    return kind == OpKind::kCholesky || kind == OpKind::kLu;
  }

  /// Classical per-op flop counts (the deadline-feasibility cost model):
  /// GEMM 2 m k q, SYRK m^2 k (triangular output), Cholesky n^3 / 3,
  /// LU 2 n^3 / 3.
  [[nodiscard]] constexpr std::uint64_t flops() const noexcept {
    const auto um = static_cast<std::uint64_t>(m);
    const auto uk = static_cast<std::uint64_t>(k);
    const auto uq = static_cast<std::uint64_t>(q);
    switch (kind) {
      case OpKind::kGemm: return 2ull * um * uk * uq;
      case OpKind::kSyrk: return um * um * uk;
      case OpKind::kCholesky: return um * um * um / 3ull;
      case OpKind::kLu: return 2ull * um * um * um / 3ull;
    }
    return 0;
  }

  [[nodiscard]] constexpr bool operator==(const OpDescriptor&) const noexcept =
      default;
};

}  // namespace aabft::baselines
