#include "baselines/plain_encode.hpp"

#include "core/require.hpp"

namespace aabft::baselines {

using gpusim::BlockCtx;
using gpusim::Dim3;
using linalg::Matrix;

Matrix plain_encode_columns(gpusim::Launcher& launcher, const Matrix& a,
                            const abft::PartitionedCodec& codec) {
  AABFT_REQUIRE(codec.divides(a.rows()),
                "rows of A must be a multiple of the checksum block size");
  const std::size_t bs = codec.bs();
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t block_rows = m / bs;
  const std::size_t col_chunks = (n + bs - 1) / bs;

  Matrix enc(codec.encoded_dim(m), n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t ei = codec.enc_index(i);
    for (std::size_t j = 0; j < n; ++j) enc(ei, j) = a(i, j);
  }

  launcher.launch(
      "encode_a_plain", Dim3{col_chunks, block_rows, 1}, [&](BlockCtx& blk) {
        auto& math = blk.math;
        const std::size_t row0 = blk.block.y * bs;
        const std::size_t col0 = blk.block.x * bs;
        const std::size_t width = std::min(bs, n - col0);
        math.load_doubles(bs * width);
        if (!gpusim::force_instrumented()) {
          // Fenced fast path: raw __restrict row sweeps accumulating into the
          // (zero-initialised) checksum row — per-column chains ascend r,
          // identical rounding to the per-op branch.
          double* __restrict cs =
              enc.data() + codec.checksum_index(blk.block.y) * n + col0;
          for (std::size_t r = 0; r < bs; ++r)
            math.add_rows(cs, a.data() + (row0 + r) * n + col0, width);
        } else {
          for (std::size_t c = 0; c < width; ++c) {
            double sum = 0.0;
            for (std::size_t r = 0; r < bs; ++r)
              sum = math.add(sum, a(row0 + r, col0 + c));
            enc(codec.checksum_index(blk.block.y), col0 + c) = sum;
          }
        }
        math.store_doubles(width);
      });
  return enc;
}

Matrix plain_encode_rows(gpusim::Launcher& launcher, const Matrix& b,
                         const abft::PartitionedCodec& codec) {
  AABFT_REQUIRE(codec.divides(b.cols()),
                "columns of B must be a multiple of the checksum block size");
  const std::size_t bs = codec.bs();
  const std::size_t n = b.rows();
  const std::size_t q = b.cols();
  const std::size_t block_cols = q / bs;
  const std::size_t row_chunks = (n + bs - 1) / bs;

  Matrix enc(n, codec.encoded_dim(q), 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < q; ++j) enc(i, codec.enc_index(j)) = b(i, j);

  launcher.launch(
      "encode_b_plain", Dim3{block_cols, row_chunks, 1}, [&](BlockCtx& blk) {
        auto& math = blk.math;
        const std::size_t row0 = blk.block.y * bs;
        const std::size_t col0 = blk.block.x * bs;
        const std::size_t height = std::min(bs, n - row0);
        const std::size_t csc = codec.checksum_index(blk.block.x);
        math.load_doubles(height * bs);
        if (!gpusim::force_instrumented()) {
          // Fenced fast path: contiguous span row sums.
          for (std::size_t r = 0; r < height; ++r)
            enc(row0 + r, csc) =
                math.sum_strided(b.data() + (row0 + r) * q + col0, bs, 1);
        } else {
          for (std::size_t r = 0; r < height; ++r) {
            double sum = 0.0;
            for (std::size_t c = 0; c < bs; ++c)
              sum = math.add(sum, b(row0 + r, col0 + c));
            enc(row0 + r, csc) = sum;
          }
        }
        math.store_doubles(height);
      });
  return enc;
}

}  // namespace aabft::baselines
