#include "core/sync.hpp"
#include "baselines/sea_abft.hpp"

#include <cmath>

#include "baselines/plain_encode.hpp"
#include "core/require.hpp"
#include "linalg/norms.hpp"

namespace aabft::baselines {

using abft::CheckKind;
using abft::CheckReport;
using abft::EpsilonTrace;
using abft::Mismatch;
using gpusim::BlockCtx;
using gpusim::Dim3;
using linalg::Matrix;

SeaBounds compute_sea_bounds(gpusim::Launcher& launcher, const Matrix& a_cc,
                             const Matrix& b_rc,
                             const abft::PartitionedCodec& codec) {
  const std::size_t bs = codec.bs();
  AABFT_REQUIRE(a_cc.rows() % (bs + 1) == 0,
                "A_cc rows must be a multiple of BS+1");
  AABFT_REQUIRE(b_rc.cols() % (bs + 1) == 0,
                "B_rc columns must be a multiple of BS+1");

  SeaBounds bounds;
  bounds.a_row_norms = linalg::row_norms2(launcher, a_cc);
  bounds.b_col_norms = linalg::col_norms2(launcher, b_rc);

  const std::size_t block_rows = a_cc.rows() / (bs + 1);
  bounds.a_block_norm_sum.assign(block_rows, 0.0);
  for (std::size_t br = 0; br < block_rows; ++br)
    for (std::size_t i = 0; i < bs; ++i)
      bounds.a_block_norm_sum[br] += bounds.a_row_norms[br * (bs + 1) + i];

  const std::size_t block_cols = b_rc.cols() / (bs + 1);
  bounds.b_block_norm_sum.assign(block_cols, 0.0);
  for (std::size_t bc = 0; bc < block_cols; ++bc)
    for (std::size_t j = 0; j < bs; ++j)
      bounds.b_block_norm_sum[bc] += bounds.b_col_norms[bc * (bs + 1) + j];

  return bounds;
}

namespace {

double epsilon_m(int t) noexcept { return std::ldexp(1.0, -t); }

}  // namespace

double sea_column_epsilon(const SeaBounds& bounds,
                          const abft::PartitionedCodec& codec,
                          std::size_t block_row, std::size_t enc_col,
                          std::size_t n) {
  const auto m = static_cast<double>(codec.bs());
  const auto nd = static_cast<double>(n);
  const double b_norm = bounds.b_col_norms[enc_col];
  const double a_sum = bounds.a_block_norm_sum[block_row];
  const double a_cs_norm = bounds.a_row_norms[codec.checksum_index(block_row)];
  return ((nd + 2.0 * m - 2.0) * b_norm * a_sum + nd * a_cs_norm * b_norm) *
         epsilon_m(bounds.t);
}

double sea_row_epsilon(const SeaBounds& bounds,
                       const abft::PartitionedCodec& codec, std::size_t enc_row,
                       std::size_t block_col, std::size_t n) {
  const auto m = static_cast<double>(codec.bs());
  const auto nd = static_cast<double>(n);
  const double a_norm = bounds.a_row_norms[enc_row];
  const double b_sum = bounds.b_block_norm_sum[block_col];
  const double b_cs_norm = bounds.b_col_norms[codec.checksum_index(block_col)];
  return ((nd + 2.0 * m - 2.0) * a_norm * b_sum + nd * b_cs_norm * a_norm) *
         epsilon_m(bounds.t);
}

CheckReport sea_check_product(gpusim::Launcher& launcher, const Matrix& c_fc,
                              const abft::PartitionedCodec& codec,
                              const SeaBounds& bounds, std::size_t inner_dim,
                              EpsilonTrace* trace) {
  const std::size_t bs = codec.bs();
  AABFT_REQUIRE(c_fc.rows() % (bs + 1) == 0 && c_fc.cols() % (bs + 1) == 0,
                "C_fc dimensions must be multiples of BS+1");
  AABFT_REQUIRE(bounds.a_row_norms.size() == c_fc.rows(),
                "SEA bounds must cover every row of C_fc");
  AABFT_REQUIRE(bounds.b_col_norms.size() == c_fc.cols(),
                "SEA bounds must cover every column of C_fc");
  const std::size_t grid_rows = c_fc.rows() / (bs + 1);
  const std::size_t grid_cols = c_fc.cols() / (bs + 1);

  CheckReport report;
  core::Mutex report_mutex{core::LockRank::kKernelReduction,
                           "kernel.sea_merge"};

  launcher.launch("check_sea", Dim3{grid_cols, grid_rows, 1}, [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t gbr = blk.block.y;
    const std::size_t gbc = blk.block.x;
    const std::size_t row0 = gbr * (bs + 1);
    const std::size_t col0 = gbc * (bs + 1);
    math.load_doubles((bs + 1) * (bs + 1));

    std::vector<Mismatch> local;
    std::vector<double> local_col_eps;
    std::vector<double> local_row_eps;

    for (std::size_t j = 0; j <= bs; ++j) {
      const std::size_t gc = col0 + j;
      // Bulk-counted column sum, identical rounding chain to per-op add().
      const double ref =
          math.sum_strided(c_fc.data() + row0 * c_fc.cols() + gc, bs,
                           c_fc.cols());
      const double stored = c_fc(row0 + bs, gc);
      const double eps = sea_column_epsilon(bounds, codec, gbr, gc, inner_dim);
      math.count_muls(4);
      math.count_adds(3);
      const double diff = math.abs(math.sub(ref, stored));
      math.count_compares(1);
      if (!(diff <= eps))  // NaN-aware: Inf/NaN corruption must trip the check
        local.push_back({CheckKind::kColumn, gbr, gbc, j, ref, stored, eps});
      if (trace != nullptr) local_col_eps.push_back(eps);
    }
    for (std::size_t i = 0; i <= bs; ++i) {
      const std::size_t gr = row0 + i;
      const double ref =
          math.sum_strided(c_fc.data() + gr * c_fc.cols() + col0, bs, 1);
      const double stored = c_fc(gr, col0 + bs);
      const double eps = sea_row_epsilon(bounds, codec, gr, gbc, inner_dim);
      math.count_muls(4);
      math.count_adds(3);
      const double diff = math.abs(math.sub(ref, stored));
      math.count_compares(1);
      if (!(diff <= eps))  // NaN-aware: Inf/NaN corruption must trip the check
        local.push_back({CheckKind::kRow, gbr, gbc, i, ref, stored, eps});
      if (trace != nullptr) local_row_eps.push_back(eps);
    }

    if (!local.empty() || trace != nullptr) {
      const core::MutexLock lock(report_mutex);
      report.mismatches.insert(report.mismatches.end(), local.begin(),
                               local.end());
      if (trace != nullptr) {
        trace->column_epsilons.insert(trace->column_epsilons.end(),
                                      local_col_eps.begin(), local_col_eps.end());
        trace->row_epsilons.insert(trace->row_epsilons.end(),
                                   local_row_eps.begin(), local_row_eps.end());
      }
    }
  });

  return report;
}

SeaAbftMultiplier::SeaAbftMultiplier(gpusim::Launcher& launcher,
                                     SeaAbftConfig config)
    : launcher_(launcher), config_(config), codec_(config.bs) {
  AABFT_REQUIRE(config_.gemm.valid(), "invalid GEMM configuration");
}

SeaAbftResult SeaAbftMultiplier::multiply(const Matrix& a, const Matrix& b) {
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const Matrix a_cc = plain_encode_columns(launcher_, a, codec_);
  const Matrix b_rc = plain_encode_rows(launcher_, b, codec_);
  const SeaBounds bounds = compute_sea_bounds(launcher_, a_cc, b_rc, codec_);
  Matrix c_fc = linalg::blocked_matmul(launcher_, a_cc, b_rc, config_.gemm);
  SeaAbftResult result;
  result.report =
      sea_check_product(launcher_, c_fc, codec_, bounds, a.cols(), nullptr);
  result.c = codec_.strip(c_fc);
  return result;
}

}  // namespace aabft::baselines
