// The unified protection-scheme interface.
//
// Every contender of the paper's experiments — unprotected GEMM, manually
// bounded ABFT, A-ABFT, SEA-ABFT and the TMR variants — implements the same
// small surface, so the experiment drivers (perf_suite, inject/campaign,
// inject/sweep) iterate over a scheme list instead of special-casing five
// incompatible result types.
//
// Two facets:
//   - ProtectedMultiplier: run the scheme's *full* pipeline on raw operands
//     and report what happened through the shared SchemeResult core.
//   - ProductChecker (optional, via make_checker): check an *externally
//     computed* full-checksum product. Fault-injection campaigns need this —
//     both ABFT contenders must judge the same faulty product so the
//     comparison is paired. Schemes whose detection is inseparable from
//     their execution (TMR replicas, unprotected) return nullptr and are
//     skipped by campaigns, with no branching in the driver.
//
// Recoverable misuse (shape mismatches) is reported through Result<> per the
// DESIGN.md §4.7 error-handling contract; exceptions remain reserved for
// genuine precondition bugs.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/encoder.hpp"
#include "core/result.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::baselines {

/// What every scheme can report about one protected multiply. Scheme-specific
/// detail (check reports, correction lists, replica votes) stays on the
/// concrete multiplier APIs; this core is what the generic drivers consume.
struct SchemeResult {
  linalg::Matrix c;            ///< the (stripped) product
  bool detected = false;       ///< the scheme flagged an error
  bool corrected = false;      ///< ... and repaired it in place
  std::size_t corrections = 0;      ///< localised elements patched in place
  std::size_t block_recomputes = 0; ///< checksum blocks recomputed in place
  std::size_t recomputed = 0;  ///< full re-executions performed
  /// The scheme believes the returned product is fault-free (always true for
  /// schemes without detection; false when detection fired and neither
  /// correction nor recomputation resolved it).
  bool clean = true;
};

/// Checks an externally computed full-checksum product (see header comment).
/// A checker may hold references into the ProductCheckContext it was created
/// from; the context's operands must outlive the checker.
class ProductChecker {
 public:
  virtual ~ProductChecker() = default;
  /// True when the scheme's bound comparison flags `c_fc` as erroneous.
  [[nodiscard]] virtual bool flags_error(const linalg::Matrix& c_fc) = 0;
};

/// Shared state a campaign prepares once: the encoded operands both ABFT
/// contenders check against. `inner_dim` is the inner-product length of the
/// unencoded problem.
struct ProductCheckContext {
  gpusim::Launcher& launcher;
  const abft::PartitionedCodec& codec;
  const abft::EncodedMatrix& a_cc;
  const abft::EncodedMatrix& b_rc;
  std::size_t inner_dim;
};

class ProtectedMultiplier {
 public:
  virtual ~ProtectedMultiplier() = default;

  /// Stable scheme identifier ("unprotected", "fixed-abft", "a-abft",
  /// "sea-abft", "tmr", "diverse-tmr") — the key the drivers report under.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Run the full pipeline: C = A * B with this scheme's protection.
  /// Shape mismatches are returned as errors, not thrown.
  [[nodiscard]] virtual Result<SchemeResult> multiply(
      const linalg::Matrix& a, const linalg::Matrix& b) = 0;

  /// Multiply independent problems. The default runs them sequentially;
  /// schemes with a pipelined implementation (A-ABFT) override it to overlap
  /// problems across streams. Result i always corresponds to problem i and
  /// is bit-identical to a sequential multiply(problems[i]).
  [[nodiscard]] virtual std::vector<Result<SchemeResult>> multiply_batch(
      std::span<const std::pair<linalg::Matrix, linalg::Matrix>> problems) {
    std::vector<Result<SchemeResult>> out;
    out.reserve(problems.size());
    for (const auto& [a, b] : problems) out.push_back(multiply(a, b));
    return out;
  }

  /// Checker over an already-encoded operand pair, or nullptr when the
  /// scheme cannot judge an external product (TMR family, unprotected).
  [[nodiscard]] virtual std::unique_ptr<ProductChecker> make_checker(
      const ProductCheckContext& /*ctx*/) {
    return nullptr;
  }
};

}  // namespace aabft::baselines
