// The unified protection-scheme interface: ProtectedBlas3.
//
// Every contender of the paper's experiments — unprotected, manually bounded
// ABFT, A-ABFT, SEA-ABFT and the TMR variants — implements the same small
// surface, so the experiment drivers (perf_suite, inject/campaign,
// inject/sweep) and the serving layer iterate over a scheme list instead of
// special-casing incompatible result types.
//
// The interface is operation-shaped, not GEMM-shaped: an OpDescriptor
// (op.hpp) names what to run — GEMM, SYRK, a right-looking Cholesky or LU
// panel factorization — and execute() returns the shared OpOutcome core.
// Schemes advertise coverage through supports(); asking for an op a scheme
// does not implement is a recoverable refusal (ErrorCode::kUnsupportedOp),
// never an assertion.
//
// Three facets:
//   - execute / execute_batch: run the scheme's *full* pipeline on raw
//     operands and report what happened through the shared OpOutcome core.
//   - multiply / multiply_batch: non-virtual GEMM compatibility shims.
//     They build the GEMM descriptor and forward to execute(), so the
//     pre-redesign drivers keep their exact call shape — and the GEMM path
//     stays bit-identical to the old ProtectedMultiplier interface.
//   - ProductChecker (optional, via make_checker): check an *externally
//     computed* full-checksum product. Fault-injection campaigns need this —
//     both ABFT contenders must judge the same faulty product so the
//     comparison is paired. Schemes whose detection is inseparable from
//     their execution (TMR replicas, unprotected) return nullptr and are
//     skipped by campaigns, with no branching in the driver.
//
// Recoverable misuse (shape mismatches, unsupported op kinds) is reported
// through Result<> per the DESIGN.md §4.7 error-handling contract;
// exceptions remain reserved for genuine precondition bugs.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/encoder.hpp"
#include "baselines/op.hpp"
#include "core/result.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::baselines {

/// What every scheme can report about one protected operation. Scheme-
/// specific detail (check reports, correction lists, replica votes) stays on
/// the concrete APIs; this core is what the generic drivers consume.
struct [[nodiscard]] OpOutcome {
  /// The data result: the (stripped) product for GEMM/SYRK, the combined
  /// factors for the factorizations (L with unit upper part implied plus U
  /// for LU; the lower-triangular L for Cholesky).
  linalg::Matrix c;
  /// Row permutation of a pivoted factorization (factored row i of PA is
  /// original row perm[i]); empty for every other op kind.
  std::vector<std::size_t> perm;
  bool detected = false;       ///< the scheme flagged an error
  bool corrected = false;      ///< ... and repaired it in place
  std::size_t corrections = 0;      ///< localised elements patched in place
  std::size_t block_recomputes = 0; ///< checksum blocks recomputed in place
  std::size_t recomputed = 0;  ///< full re-executions performed (whole
                               ///< product, or panel updates / factor
                               ///< restarts for the factorizations)
  /// Protected panel updates run (factorizations only; 0 for GEMM/SYRK).
  std::size_t protected_updates = 0;
  /// Online k-panel screen events of the fused A-ABFT GEMM (rung 0 of the
  /// recovery ladder): mismatches observed mid-product, and tile panel
  /// replays that repaired them before the operation finished. 0 for every
  /// other scheme/path.
  std::size_t panel_detections = 0;
  std::size_t panel_recomputes = 0;
  /// The operation's checksums were accumulated inside the product kernel
  /// (fused pipeline) instead of a standalone encode pass.
  bool fused_encode = false;
  /// The scheme believes the returned result is fault-free (always true for
  /// schemes without detection; false when detection fired and neither
  /// correction nor recomputation resolved it).
  bool clean = true;
};

/// Pre-redesign name of the outcome core; the fields GEMM drivers consume
/// are unchanged.
using SchemeResult = OpOutcome;

/// Checks an externally computed full-checksum product (see header comment).
/// A checker may hold references into the ProductCheckContext it was created
/// from; the context's operands must outlive the checker.
class ProductChecker {
 public:
  virtual ~ProductChecker() = default;
  /// True when the scheme's bound comparison flags `c_fc` as erroneous.
  [[nodiscard]] virtual bool flags_error(const linalg::Matrix& c_fc) = 0;
};

/// Shared state a campaign prepares once: the encoded operands both ABFT
/// contenders check against. `inner_dim` is the inner-product length of the
/// unencoded problem.
struct ProductCheckContext {
  gpusim::Launcher& launcher;
  const abft::PartitionedCodec& codec;
  const abft::EncodedMatrix& a_cc;
  const abft::EncodedMatrix& b_rc;
  std::size_t inner_dim;
};

class ProtectedBlas3 {
 public:
  virtual ~ProtectedBlas3() = default;

  /// Stable scheme identifier ("unprotected", "fixed-abft", "a-abft",
  /// "sea-abft", "tmr", "diverse-tmr") — the key the drivers report under.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True when execute() implements this op kind. The default interface
  /// contract is GEMM-only; schemes with factorization coverage override.
  [[nodiscard]] virtual bool supports(OpKind kind) const noexcept {
    return kind == OpKind::kGemm;
  }

  /// Run the operation named by `desc` with this scheme's protection. For
  /// ops with uses_b() == false, `b` is ignored (pass an empty matrix).
  /// Shape mismatches and unsupported op kinds are returned as errors, not
  /// thrown.
  [[nodiscard]] virtual Result<OpOutcome> execute(const OpDescriptor& desc,
                                                  const linalg::Matrix& a,
                                                  const linalg::Matrix& b) = 0;

  /// Execute independent problems of one op kind. The default runs them
  /// sequentially; schemes with a pipelined implementation (A-ABFT GEMM)
  /// override it to overlap problems across streams. Result i always
  /// corresponds to problem i and is bit-identical to a sequential
  /// execute(problems[i]).
  [[nodiscard]] virtual std::vector<Result<OpOutcome>> execute_batch(
      OpKind kind,
      std::span<const std::pair<linalg::Matrix, linalg::Matrix>> problems) {
    std::vector<Result<OpOutcome>> out;
    out.reserve(problems.size());
    for (const auto& [a, b] : problems)
      out.push_back(execute(OpDescriptor::of(kind, a, b), a, b));
    return out;
  }

  /// GEMM compatibility shim: C = A * B with this scheme's protection.
  /// Exactly execute() with the GEMM descriptor — same validation, same
  /// bits, same bookkeeping as the pre-redesign ProtectedMultiplier API.
  [[nodiscard]] Result<OpOutcome> multiply(const linalg::Matrix& a,
                                           const linalg::Matrix& b) {
    return execute(OpDescriptor::gemm(a.rows(), a.cols(), b.cols()), a, b);
  }

  /// GEMM batch compatibility shim (see multiply).
  [[nodiscard]] std::vector<Result<OpOutcome>> multiply_batch(
      std::span<const std::pair<linalg::Matrix, linalg::Matrix>> problems) {
    return execute_batch(OpKind::kGemm, problems);
  }

  /// Checker over an already-encoded operand pair, or nullptr when the
  /// scheme cannot judge an external product (TMR family, unprotected).
  [[nodiscard]] virtual std::unique_ptr<ProductChecker> make_checker(
      const ProductCheckContext& /*ctx*/) {
    return nullptr;
  }
};

/// Pre-redesign name of the scheme interface (GEMM drivers use the multiply
/// shims and never see the descriptor).
using ProtectedMultiplier = ProtectedBlas3;

}  // namespace aabft::baselines
